"""All-pairs shortest paths for the migration cost model.

Section V-A of the paper transforms the path-dependent transmission cost
``g(v_i, v_p, e_ip)`` into a path-independent ``G(v_i, v_p)`` by running
Floyd–Warshall over the rack graph ``T`` (time complexity ``O(n^3)``).  We
implement Floyd–Warshall with a vectorized inner update — the classic
``numpy`` formulation where iteration ``k`` performs one broadcasted
``minimum`` over the full distance matrix, turning the two inner Python
loops into BLAS-grade array ops (HPC guide: vectorize for-loops, operate
in place).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import TopologyError

__all__ = ["floyd_warshall", "floyd_warshall_with_paths", "reconstruct_path"]


def floyd_warshall(weights: np.ndarray) -> np.ndarray:
    """All-pairs shortest path distances.

    Parameters
    ----------
    weights:
        ``(n, n)`` matrix with edge weights, ``np.inf`` for non-edges and
        ``0`` on the diagonal (as produced by
        :meth:`~repro.topology.base.Topology.adjacency_matrix`).

    Returns
    -------
    ``(n, n)`` distance matrix.  Unreachable pairs stay ``inf``.
    """
    d = _check_and_copy(weights)
    n = d.shape[0]
    for k in range(n):
        # d[i, j] = min(d[i, j], d[i, k] + d[k, j]) for all i, j at once.
        np.minimum(d, d[:, k, None] + d[None, k, :], out=d)
    return d


def floyd_warshall_with_paths(weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Shortest path distances plus a successor matrix for path recovery.

    Returns ``(dist, nxt)`` where ``nxt[i, j]`` is the node after ``i`` on a
    shortest ``i -> j`` path, or ``-1`` when ``j`` is unreachable from ``i``.
    """
    d = _check_and_copy(weights)
    n = d.shape[0]
    nxt = np.full((n, n), -1, dtype=np.int64)
    finite = np.isfinite(weights) & ~np.eye(n, dtype=bool)
    # direct edges: successor of i towards j is j itself
    cols = np.arange(n)
    for i in range(n):
        nxt[i, finite[i]] = cols[finite[i]]
    np.fill_diagonal(nxt, cols)
    for k in range(n):
        alt = d[:, k, None] + d[None, k, :]
        better = alt < d
        if better.any():
            d[better] = alt[better]
            # route through k: successor towards j becomes successor towards k
            rows = np.nonzero(better.any(axis=1))[0]
            for i in rows:
                nxt[i, better[i]] = nxt[i, k]
    return d, nxt


def reconstruct_path(nxt: np.ndarray, src: int, dst: int) -> list[int]:
    """Recover the node sequence of a shortest path from the successor matrix.

    Returns ``[src, ..., dst]``; raises :class:`TopologyError` when *dst* is
    unreachable from *src*.
    """
    n = nxt.shape[0]
    if not (0 <= src < n and 0 <= dst < n):
        raise TopologyError(f"path endpoints ({src}, {dst}) out of range 0..{n - 1}")
    if src == dst:
        return [src]
    if nxt[src, dst] < 0:
        raise TopologyError(f"node {dst} unreachable from {src}")
    path = [src]
    cur = src
    # a simple path visits at most n nodes; guard against corrupt matrices
    for _ in range(n):
        cur = int(nxt[cur, dst])
        path.append(cur)
        if cur == dst:
            return path
    raise TopologyError("successor matrix contains a cycle")


def _check_and_copy(weights: np.ndarray) -> np.ndarray:
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise TopologyError(f"weight matrix must be square, got shape {w.shape}")
    if (np.diagonal(w) != 0).any():
        raise TopologyError("weight matrix diagonal must be zero")
    finite = w[np.isfinite(w)]
    if (finite < 0).any():
        raise TopologyError("negative edge weights are not supported")
    return w.copy()
