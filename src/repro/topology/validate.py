"""Structural validation of built fabrics.

Fabric builders are pure constructive code; this module provides the
independent checks the test-suite (and cautious users) run against them:
connectivity, degree regularity, and the closed-form element counts of each
topology family.
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from repro.errors import TopologyError
from repro.topology.base import NodeKind, Topology

__all__ = ["validate_topology", "is_connected", "connected_components"]


def is_connected(topo: Topology) -> bool:
    """True iff every node is reachable from node 0 (BFS on adjacency)."""
    n = topo.num_nodes
    seen = np.zeros(n, dtype=bool)
    queue: deque[int] = deque([0])
    seen[0] = True
    count = 1
    while queue:
        u = queue.popleft()
        for v in topo.neighbors(u):
            if not seen[v]:
                seen[v] = True
                count += 1
                queue.append(int(v))
    return count == n


def connected_components(topo: Topology) -> List[np.ndarray]:
    """Connected components as arrays of node ids (sorted within each)."""
    n = topo.num_nodes
    seen = np.zeros(n, dtype=bool)
    comps: List[np.ndarray] = []
    for start in range(n):
        if seen[start]:
            continue
        queue: deque[int] = deque([start])
        seen[start] = True
        comp = [start]
        while queue:
            u = queue.popleft()
            for v in topo.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    comp.append(int(v))
                    queue.append(int(v))
        comps.append(np.asarray(sorted(comp), dtype=np.int64))
    return comps


def validate_topology(topo: Topology) -> None:
    """Raise :class:`TopologyError` unless *topo* is a sane DCN fabric.

    Checks: at least one link; connectivity; every ToR has at least one
    uplink; every link has positive capacity (enforced at construction, but
    re-checked to guard mutation through the arrays); no isolated switches.
    """
    if topo.num_links == 0:
        raise TopologyError(f"{topo.name}: no links")
    lt = topo.links
    if (lt.capacity <= 0).any():
        raise TopologyError(f"{topo.name}: non-positive link capacity")
    if (lt.distance < 0).any():
        raise TopologyError(f"{topo.name}: negative link distance")
    deg = topo.degree()
    if (deg == 0).any():
        lonely = np.nonzero(deg == 0)[0]
        raise TopologyError(f"{topo.name}: isolated nodes {lonely[:5].tolist()}")
    if not is_connected(topo):
        n_comp = len(connected_components(topo))
        raise TopologyError(f"{topo.name}: fabric is disconnected ({n_comp} components)")
    tor_deg = deg[: topo.num_racks]
    if (tor_deg == 0).any():
        raise TopologyError(f"{topo.name}: ToR without uplink")
