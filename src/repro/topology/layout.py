"""Physical rack layout per the paper's facility settings (Sec. II-A).

Racks are 0.6 m wide, 2 m tall, 1 m deep; racks stand side by side forming
rows with ~2 m aisles between rows.  Sheriff's dependency cost multiplies a
unit cost ``C_d`` by physical distance, so the layout feeds directly into
:mod:`repro.costs`.

We place ``num_racks`` racks into rows of ``racks_per_row`` and measure
rectilinear (aisle-walking) distance between rack centers: cabling and
maintenance paths in a data center follow aisles, not diagonals.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "RACK_WIDTH_M",
    "RACK_DEPTH_M",
    "ROW_GAP_M",
    "rack_positions",
    "rack_distance_matrix",
]

RACK_WIDTH_M = 0.6
RACK_DEPTH_M = 1.0
ROW_GAP_M = 2.0


def rack_positions(num_racks: int, racks_per_row: int = 10) -> np.ndarray:
    """Center coordinates ``(x, y)`` in meters of each rack.

    Racks fill rows left-to-right; row pitch is rack depth + aisle gap.
    """
    if num_racks < 1:
        raise ConfigurationError(f"need at least one rack, got {num_racks}")
    if racks_per_row < 1:
        raise ConfigurationError(f"racks_per_row must be >= 1, got {racks_per_row}")
    idx = np.arange(num_racks)
    col = idx % racks_per_row
    row = idx // racks_per_row
    x = (col + 0.5) * RACK_WIDTH_M
    y = (row + 0.5) * (RACK_DEPTH_M + ROW_GAP_M)
    return np.stack([x, y], axis=1)


def rack_distance_matrix(num_racks: int, racks_per_row: int = 10) -> np.ndarray:
    """Pairwise rectilinear distances (meters) between rack centers.

    Vectorized: broadcasts the position array against itself instead of a
    double Python loop.
    """
    pos = rack_positions(num_racks, racks_per_row)
    diff = np.abs(pos[:, None, :] - pos[None, :, :])
    return diff.sum(axis=2)
