"""PRIORITY candidate selection (Alg. 2).

Given a candidate VM set ``F`` and a priority factor ``w``:

* ``w = 1`` — pick the single VM with the highest ALERT (host-overload
  case: relieve the worst offender, keep churn minimal);
* ``w = α`` (switch alerts) / ``w = β`` (ToR alerts) — delay-sensitive VMs
  are eliminated first, then a 0/1 knapsack over the allowed capacity
  ``w · capacity`` selects "as many VMs with lowest value as possible":
  among subsets that relieve the most capacity (≤ the budget), the one
  with minimum total value wins.

The DP runs in ``O(|F| · C)`` with ``C`` the capacity budget in the
paper's minimum unit (Mbps); subsets are reconstructed from a kept/not
table rather than the paper's set-valued ``V[]`` array (same result,
no per-cell set copies).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["PriorityFactor", "CandidateVM", "priority_select"]


class PriorityFactor(Enum):
    """Which Alg. 2 case applies."""

    ALPHA = "alpha"  # outer-switch alert: budget = α · switch share
    BETA = "beta"  # ToR alert: budget = β · ToR capacity
    ONE = "one"  # host alert: single max-ALERT VM


@dataclass(frozen=True)
class CandidateVM:
    """Selection view of one VM."""

    vm_id: int
    capacity: int
    value: float
    alert: float
    delay_sensitive: bool = False

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError(
                f"candidate {self.vm_id}: capacity must be positive, got {self.capacity}"
            )


def priority_select(
    candidates: Sequence[CandidateVM],
    factor: PriorityFactor,
    *,
    budget: Optional[int] = None,
) -> List[CandidateVM]:
    """Run Alg. 2 and return the selected VMs.

    Parameters
    ----------
    candidates:
        The set ``F``.
    factor:
        ``ONE`` needs no budget; ``ALPHA``/``BETA`` require *budget* =
        ``w · capacity`` already multiplied out by the caller (the caller
        knows whether the base is the switch share or the ToR capacity).
    """
    # Alg. 2 line 1 applies before the switch: delay-sensitive VMs are
    # never migration candidates, whichever priority factor is in play
    pool = [c for c in candidates if not c.delay_sensitive]
    if not pool:
        return []
    if factor is PriorityFactor.ONE:
        # highest ALERT; ties broken by largest size then lowest value,
        # matching the paper's eviction preference ("lowest value but
        # largest size") so the single move relieves the most load
        return [max(pool, key=lambda c: (c.alert, c.capacity, -c.value))]

    if budget is None or budget < 0:
        raise ConfigurationError(
            f"{factor.value}-selection needs a non-negative capacity budget, got {budget}"
        )
    if budget == 0:
        return []

    caps = np.asarray([c.capacity for c in pool], dtype=np.int64)
    vals = np.asarray([c.value for c in pool], dtype=np.float64)
    C = int(min(budget, caps.sum()))
    if C <= 0:
        return []

    n = len(pool)
    # dp[i][j] = min total value of a subset of pool[:i] with capacity
    # exactly j; the full prefix table makes reconstruction unambiguous.
    dp = np.full((n + 1, C + 1), np.inf)
    dp[0, 0] = 0.0
    for i in range(n):
        ci, vi = int(caps[i]), float(vals[i])
        dp[i + 1] = dp[i]
        if ci <= C:
            cand = dp[i, : C - ci + 1] + vi
            better = cand < dp[i + 1, ci:]
            dp[i + 1, ci:][better] = cand[better]
    feasible = np.nonzero(np.isfinite(dp[n]))[0]
    # most relieved capacity wins; dp already holds min value at that size
    j = int(feasible.max())
    chosen: List[CandidateVM] = []
    for i in range(n, 0, -1):
        if dp[i, j] != dp[i - 1, j]:
            chosen.append(pool[i - 1])
            j -= int(caps[i - 1])
    chosen.reverse()
    return chosen
