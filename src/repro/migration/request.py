"""REQUEST/ACK/REJECT receiver protocol (Alg. 4).

A migration destination is only valid once the destination's delegation
node accepts the request.  Requests are served first-come-first-served;
the receiver checks that it really is the candidate delegation for the
target host, that the host has room (accounting for capacity it has
already promised this round), and that no dependency conflict would
co-locate dependent VMs on one server (Sec. II-C's conflict graph).

The receiver is also the natural tracing point for the protocol: with a
tracer attached it emits :class:`~repro.obs.events.RequestAcked` /
:class:`~repro.obs.events.RequestRejected` (with the Alg. 4 reason) for
every verdict and :class:`~repro.obs.events.MigrationCommitted` when a
reservation is applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.errors import ProtocolError
from repro.obs.events import MigrationCommitted, RequestAcked, RequestRejected
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["RequestOutcome", "ReceiverRegistry"]


class RequestOutcome(Enum):
    """Receiver verdict on one REQUEST message."""

    ACK = "ack"
    REJECT = "reject"
    IGNORED = "ignored"  # addressed to the wrong delegation (Alg. 4 line 8)


@dataclass
class _Reservation:
    vm: int
    host: int
    capacity: int


class ReceiverRegistry:
    """Receiver-side state for one management round.

    One registry serves the whole cluster (each delegation's acceptances
    are independent, keyed by rack); reservations accumulate until
    :meth:`commit_round` applies the accepted migrations to the placement,
    or :meth:`reset_round` drops them.
    """

    def __init__(self, cluster: Cluster, *, tracer: Tracer = NULL_TRACER) -> None:
        self.cluster = cluster
        self.tracer = tracer
        self._promised: Dict[int, int] = {}  # host -> capacity promised
        self._reservations: List[_Reservation] = []
        self._reserved_vms: set[int] = set()
        # (vm, dst_host, dst_rack) -> verdict; populated only via redeliver()
        self._verdicts: Dict[Tuple[int, int, int], RequestOutcome] = {}

    # ------------------------------------------------------------------ #
    def _verdict(
        self, outcome: RequestOutcome, vm: int, dst_host: int, dst_rack: int,
        reason: str = "",
    ) -> RequestOutcome:
        """Emit the receiver-side trace event for one verdict."""
        if self.tracer.enabled:
            if outcome is RequestOutcome.ACK:
                self.tracer.emit(
                    RequestAcked(vm=vm, dst_host=dst_host, dst_rack=dst_rack)
                )
            else:
                self.tracer.emit(
                    RequestRejected(
                        vm=vm, dst_host=dst_host, dst_rack=dst_rack, reason=reason
                    )
                )
        return outcome

    def request(self, vm: int, dst_host: int, dst_rack: int) -> RequestOutcome:
        """Alg. 4 for one REQUEST(vm → dst_host) addressed to *dst_rack*.

        ``dst_rack`` models the addressing: a request routed to a
        delegation that does not own the host is ignored, not rejected.
        """
        pl = self.cluster.placement
        if not (0 <= vm < pl.num_vms):
            raise ProtocolError(f"unknown vm {vm}")
        if not (0 <= dst_host < pl.num_hosts):
            raise ProtocolError(f"unknown host {dst_host}")
        if int(pl.host_rack[dst_host]) != dst_rack:
            return self._verdict(
                RequestOutcome.IGNORED, vm, dst_host, dst_rack, "wrong-delegation"
            )
        if vm in self._reserved_vms:
            raise ProtocolError(f"vm {vm} already holds a reservation this round")
        need = int(pl.vm_capacity[vm])
        free = pl.free_capacity(dst_host) - self._promised.get(dst_host, 0)
        if free < need:
            return self._verdict(
                RequestOutcome.REJECT, vm, dst_host, dst_rack, "capacity"
            )
        if self.cluster.dependencies.conflicts_on_host(pl, vm, dst_host):
            return self._verdict(
                RequestOutcome.REJECT, vm, dst_host, dst_rack, "dependency-conflict"
            )
        self._promised[dst_host] = self._promised.get(dst_host, 0) + need
        self._reservations.append(_Reservation(vm=vm, host=dst_host, capacity=need))
        self._reserved_vms.add(vm)
        return self._verdict(RequestOutcome.ACK, vm, dst_host, dst_rack)

    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Number of un-committed reservations."""
        return len(self._reservations)

    @property
    def reserved_moves(self) -> List[Tuple[int, int]]:
        """Un-committed ``(vm, dst_host)`` pairs, in reservation order.

        A read-only snapshot for pre-commit bookkeeping (e.g. the SLO
        accountant records each VM's source host before the placement
        mutates under :meth:`commit_round`).
        """
        return [(res.vm, res.host) for res in self._reservations]

    def holds_reservation(self, vm: int) -> bool:
        """Whether *vm* currently holds an un-committed reservation."""
        return vm in self._reserved_vms

    def redeliver(self, vm: int, dst_host: int, dst_rack: int) -> RequestOutcome:
        """Idempotent REQUEST delivery for retrying senders.

        When an ACK is lost in transit the sender retries the same REQUEST;
        Alg. 4's FCFS receiver must answer with the *cached* verdict rather
        than re-run admission (a second pass would raise on the duplicate
        reservation, or double-promise capacity on a REJECT-then-free race).
        First delivery falls through to :meth:`request`.
        """
        cached = self._verdicts.get((vm, dst_host, dst_rack))
        if cached is not None:
            return cached
        outcome = self.request(vm, dst_host, dst_rack)
        self._verdicts[(vm, dst_host, dst_rack)] = outcome
        return outcome

    def cancel(self, vm: int) -> None:
        """Release *vm*'s reservation (sender gave up — lease expiry).

        Un-promises the destination capacity and forgets the cached
        verdict, so a later round (or a different sender) can re-use the
        slot.  Raises :class:`ProtocolError` if *vm* holds no reservation.
        """
        if vm not in self._reserved_vms:
            raise ProtocolError(f"vm {vm} holds no reservation")
        for i, res in enumerate(self._reservations):
            if res.vm == vm:
                self._promised[res.host] -= res.capacity
                if self._promised[res.host] <= 0:
                    del self._promised[res.host]
                del self._reservations[i]
                break
        self._reserved_vms.discard(vm)
        self._verdicts = {k: v for k, v in self._verdicts.items() if k[0] != vm}

    def commit_round(self) -> List[Tuple[int, int]]:
        """Apply every accepted migration; returns ``(vm, host)`` pairs.

        Atomic: if :meth:`Placement.migrate` raises partway through the
        reservation list (a destination died mid-round, say), every move
        already applied is rolled back before the error propagates — the
        placement is left exactly as it was when the round was planned,
        never half-committed.
        """
        moved: List[Tuple[int, int]] = []
        applied: List[Tuple[int, int]] = []  # (vm, src) for rollback
        total = len(self._reservations)
        pl = self.cluster.placement
        try:
            for res in self._reservations:
                src = pl.host_of(res.vm)
                pl.migrate(res.vm, res.host)
                applied.append((res.vm, src))
                moved.append((res.vm, res.host))
                if self.tracer.enabled:
                    self.tracer.emit(MigrationCommitted(vm=res.vm, dst_host=res.host))
        except Exception as exc:
            for vm, src in reversed(applied):
                pl.migrate(vm, src)
            self.reset_round()
            raise ProtocolError(
                f"commit aborted at move {len(applied) + 1} of {total}; "
                f"{len(applied)} applied moves rolled back"
            ) from exc
        self.reset_round()
        return moved

    def commit_round_tolerant(
        self,
    ) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int, str]]]:
        """Commit what can be committed; report the rest.

        Degraded-mode variant of :meth:`commit_round` used when faults are
        active: a reservation whose move fails (destination died, VM lost)
        is skipped and reported as ``(vm, host, reason)`` instead of
        aborting the round.  Returns ``(moved, failed)``.
        """
        from repro.errors import ReproError

        moved: List[Tuple[int, int]] = []
        failed: List[Tuple[int, int, str]] = []
        pl = self.cluster.placement
        for res in self._reservations:
            try:
                pl.migrate(res.vm, res.host)
            except ReproError as exc:
                failed.append((res.vm, res.host, str(exc)))
                continue
            moved.append((res.vm, res.host))
            if self.tracer.enabled:
                self.tracer.emit(MigrationCommitted(vm=res.vm, dst_host=res.host))
        self.reset_round()
        return moved, failed

    def reset_round(self) -> None:
        """Drop all reservations without applying them."""
        self._promised.clear()
        self._reservations.clear()
        self._reserved_vms.clear()
        self._verdicts.clear()
