"""FLOWREROUTE: steer flows around hot switches (Sec. III-B case 3).

Flow rerouting is cheaper and faster than live migration, so shims apply
it first when the alert comes from an *outer* switch.  The model: every
inter-rack VM dependency carries a flow along its current path; a shim
told that switch ``s`` is hot recomputes the paths of its local flows
that traverse ``s`` on the fabric *minus* ``s`` and moves them there.

:class:`FlowTable` keeps the flows and per-switch loads; rerouting is a
per-flow Dijkstra on a masked adjacency (scipy, C-speed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.errors import ConfigurationError, TopologyError
from repro.topology.base import Topology

__all__ = ["Flow", "FlowTable", "flow_reroute"]


@dataclass
class Flow:
    """One steady flow between two racks attributed to a source VM."""

    flow_id: int
    vm: int
    src_rack: int
    dst_rack: int
    rate: float
    path: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError(f"flow {self.flow_id}: rate must be positive")


class FlowTable:
    """Flow registry with per-node load accounting.

    Parameters
    ----------
    ecmp:
        When True, new flows hash-spread across their equal-cost path set
        (keyed by flow id), the way production fabrics place flows; when
        False every flow takes the one deterministic min-weight path —
        the pessimistic single-path world where hotspots form fastest.
    """

    def __init__(self, topology: Topology, *, ecmp: bool = False) -> None:
        self.topology = topology
        self.ecmp = ecmp
        self.flows: Dict[int, Flow] = {}
        self._next_id = 0
        self.node_load = np.zeros(topology.num_nodes, dtype=np.float64)
        self._weights = self._edge_weight_matrix()

    def _edge_weight_matrix(self) -> csr_matrix:
        lt = self.topology.links
        n = self.topology.num_nodes
        w = 1.0 / lt.capacity  # prefer fat links
        return csr_matrix(
            (
                np.concatenate([w, w]),
                (np.concatenate([lt.u, lt.v]), np.concatenate([lt.v, lt.u])),
            ),
            shape=(n, n),
        )

    # ------------------------------------------------------------------ #
    def add_flow(self, vm: int, src_rack: int, dst_rack: int, rate: float) -> int:
        """Register a flow and route it on the unmasked fabric."""
        n_racks = self.topology.num_racks
        if not (0 <= src_rack < n_racks and 0 <= dst_rack < n_racks):
            raise TopologyError(f"flow endpoints ({src_rack}, {dst_rack}) not racks")
        fid = self._next_id
        self._next_id += 1
        flow = Flow(flow_id=fid, vm=vm, src_rack=src_rack, dst_rack=dst_rack, rate=rate)
        if self.ecmp and src_rack != dst_rack:
            from repro.topology.routing import ecmp_path

            flow.path = ecmp_path(
                self.topology, src_rack, dst_rack, fid, weight="inverse_capacity"
            )
        else:
            flow.path = self._route(src_rack, dst_rack, avoid=frozenset())
        self.flows[fid] = flow
        self._apply_load(flow.path, rate)
        return fid

    def remove_flow(self, fid: int) -> None:
        flow = self.flows.pop(fid, None)
        if flow is None:
            raise ConfigurationError(f"unknown flow {fid}")
        self._apply_load(flow.path, -flow.rate)

    def _apply_load(self, path: Sequence[int], rate: float) -> None:
        if path:
            np.add.at(self.node_load, np.asarray(path, dtype=np.int64), rate)

    def _route(self, src: int, dst: int, avoid: frozenset) -> List[int]:
        if src == dst:
            return [src]
        g = self._weights
        if avoid:
            keep = np.ones(self.topology.num_nodes, dtype=bool)
            keep[list(avoid)] = False
            if not (keep[src] and keep[dst]):
                raise TopologyError("cannot avoid an endpoint of the flow")
            mask = np.nonzero(keep)[0]
            sub = g[mask][:, mask]
            remap = -np.ones(self.topology.num_nodes, dtype=np.int64)
            remap[mask] = np.arange(mask.size)
            dist, pred = dijkstra(
                sub, directed=False, indices=remap[src], return_predecessors=True
            )
            if not np.isfinite(dist[remap[dst]]):
                raise TopologyError(f"no path {src} -> {dst} avoiding {sorted(avoid)}")
            path = [int(remap[dst])]
            while path[-1] != remap[src]:
                path.append(int(pred[path[-1]]))
            return [int(mask[i]) for i in reversed(path)]
        dist, pred = dijkstra(g, directed=False, indices=src, return_predecessors=True)
        if not np.isfinite(dist[dst]):
            raise TopologyError(f"no path {src} -> {dst}")
        path = [dst]
        while path[-1] != src:
            path.append(int(pred[path[-1]]))
        return path[::-1]

    # ------------------------------------------------------------------ #
    def flows_through(self, node: int, *, from_rack: Optional[int] = None) -> List[Flow]:
        """Flows whose path crosses *node*, optionally filtered by source rack."""
        out = []
        for f in self.flows.values():
            if node in f.path and (from_rack is None or f.src_rack == from_rack):
                out.append(f)
        return out

    def load_of(self, node: int) -> float:
        return float(self.node_load[node])


def flow_reroute(
    table: FlowTable,
    flow_ids: Sequence[int],
    hot_switches: Set[int],
) -> Tuple[int, int]:
    """Reroute the given flows around *hot_switches*.

    Returns ``(rerouted, failed)`` counts; a flow that has no alternative
    path keeps its current one (and counts as failed) — the shim will fall
    back to VM migration for its VM.
    """
    avoid = frozenset(int(s) for s in hot_switches)
    ok = failed = 0
    for fid in flow_ids:
        flow = table.flows.get(int(fid))
        if flow is None:
            raise ConfigurationError(f"unknown flow {fid}")
        try:
            new_path = table._route(flow.src_rack, flow.dst_rack, avoid)
        except TopologyError:
            failed += 1
            continue
        table._apply_load(flow.path, -flow.rate)
        flow.path = new_path
        table._apply_load(new_path, flow.rate)
        ok += 1
    return ok, failed
