"""Pre-Alert Management Procedure (Alg. 1) — the per-shim framework.

Every delegation node runs one :class:`ShimManager`.  Each round it takes
the alerts addressed to it, dispatches on their kind:

* **outer switch** — collect local VMs whose flows cross the hot switch,
  PRIORITY(F, α), and reroute those flows (cheaper than migration, so it
  runs first — Sec. III-B);
* **local host** — PRIORITY(F, 1): the single highest-ALERT VM on that
  host joins the migration set;
* **local ToR** — aggregated after the loop: PRIORITY over the whole
  rack with the β budget of the ToR capacity (Eq. 10).

and finally calls VMMIGRATION (Alg. 3) on the migration set against the
one-hop neighbor racks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.alerts.alert import Alert, AlertKind
from repro.cluster.cluster import Cluster
from repro.cluster.shim import ShimView
from repro.cluster.snapshot import FleetSnapshot
from repro.costs.model import CostModel
from repro.errors import ConfigurationError
from repro.migration.priority import CandidateVM, PriorityFactor, priority_select
from repro.migration.request import ReceiverRegistry
from repro.migration.reroute import FlowTable, flow_reroute
from repro.migration.vmmigration import MigrationStats, vmmigration
from repro.obs.events import FlowRerouted, PrioritySelected
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import NULL_PROFILER
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.costblock import (
    RackCostBlock,
    build_cost_block,
    run_planned_migration,
)

__all__ = ["RoundReport", "ShimPlan", "ShimManager"]


@dataclass
class RoundReport:
    """What one shim did in one management round."""

    rack: int
    migration: MigrationStats = field(default_factory=MigrationStats)
    selected_for_migration: List[int] = field(default_factory=list)
    rerouted_flows: int = 0
    reroute_failures: int = 0
    alerts_processed: int = 0
    predicted_slo_damage: float = 0.0
    """Summed predicted SLO damage (violation-minutes) of the migration
    set under ``scoring="slo"``; 0 under pure network scoring."""


@dataclass
class ShimPlan:
    """Pure output of one shim's plan phase (no shared state touched yet).

    Produced by :meth:`ShimManager.plan_round` — possibly in a worker
    thread — and consumed by :meth:`ShimManager.execute_plan` in the main
    thread, in deterministic rack order.  ``events`` holds tracer events
    queued during planning (emission is deferred so the trace stream stays
    single-threaded and ordered); ``timings`` holds locally measured
    profiler sections to be folded in at execute time.
    """

    rack: int
    alerts_processed: int = 0
    migrate_set: List[int] = field(default_factory=list)
    reroute_flow_ids: List[int] = field(default_factory=list)
    hot_switches: Set[int] = field(default_factory=set)
    block: Optional[RackCostBlock] = None
    events: List[object] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)


class ShimManager:
    """Alg. 1 bound to one delegation node.

    Parameters
    ----------
    alpha, beta:
        Capacity portions for switch-triggered rerouting and ToR-triggered
        migration ("different portion of capacity for migration since it
        is not necessary to migrate all VMs").
    flow_table:
        Shared flow registry; optional — without it, outer-switch alerts
        are counted but produce no reroutes.
    tracer, metrics, profiler:
        Observability handles (see :mod:`repro.obs`); all default to
        disabled no-ops.
    """

    def __init__(
        self,
        cluster: Cluster,
        cost_model: CostModel,
        rack: int,
        *,
        alpha: float = 0.1,
        beta: float = 0.1,
        balance_weight: float = 50.0,
        flow_table: Optional[FlowTable] = None,
        tracer: Tracer = NULL_TRACER,
        metrics: Optional[MetricsRegistry] = None,
        profiler=NULL_PROFILER,
        slo_scorer=None,
    ) -> None:
        if not (0.0 < alpha <= 1.0) or not (0.0 < beta <= 1.0):
            raise ConfigurationError(
                f"alpha/beta must be in (0, 1], got {alpha}/{beta}"
            )
        self.cluster = cluster
        self.cost_model = cost_model
        self.rack = rack
        self.alpha = alpha
        self.beta = beta
        self.balance_weight = balance_weight
        self.flow_table = flow_table
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        self.slo_scorer = slo_scorer
        self.shim = ShimView(cluster, rack)

    # ------------------------------------------------------------------ #
    def _candidate(self, vm: int, alerts: Dict[int, float]) -> CandidateVM:
        pl = self.cluster.placement
        return CandidateVM(
            vm_id=vm,
            capacity=int(pl.vm_capacity[vm]),
            value=float(pl.vm_value[vm]),
            alert=float(alerts.get(vm, 0.0)),
            delay_sensitive=bool(pl.vm_delay_sensitive[vm]),
        )

    def process_round(
        self,
        alerts: Sequence[Alert],
        vm_alerts: Dict[int, float],
        receivers: ReceiverRegistry,
        frozen: frozenset = frozenset(),
        host_load=None,
    ) -> RoundReport:
        """Run Alg. 1 for this shim.

        Parameters
        ----------
        alerts:
            Alert messages addressed to this rack this round.
        vm_alerts:
            Per-VM ALERT magnitudes (from the monitors), used by PRIORITY.
        receivers:
            The round's shared REQUEST/ACK state.
        frozen:
            VMs that may not migrate this round — typically VMs still inside
            their live-migration window (Fig. 2's t1-t4 spans multiple
            rounds); excluding them prevents migration ping-pong.
        host_load:
            Optional measured per-host utilization for destination steering
            (see :func:`repro.migration.vmmigration.vmmigration`).
        """
        report = RoundReport(rack=self.rack)
        pl = self.cluster.placement
        tracer = self.tracer
        migrate_set: List[int] = []
        reroute_flow_ids: List[int] = []
        hot_switches: Set[int] = set()
        tor_alerted = False

        for alert in alerts:
            if alert.rack != self.rack:
                raise ConfigurationError(
                    f"alert for rack {alert.rack} delivered to shim {self.rack}"
                )
            report.alerts_processed += 1
            if alert.kind is AlertKind.OUTER_SWITCH:
                assert alert.switch is not None
                hot_switches.add(alert.switch)
                if self.flow_table is not None:
                    flows = self.flow_table.flows_through(
                        alert.switch, from_rack=self.rack
                    )
                    cands = [self._candidate(f.vm, vm_alerts) for f in flows]
                    budget = max(1, int(self.alpha * self.cluster.tor_capacity(self.rack)))
                    with self.profiler.section("priority"):
                        chosen = priority_select(
                            cands, PriorityFactor.ALPHA, budget=budget
                        )
                    self._trace_priority(PriorityFactor.ALPHA, budget, cands, chosen)
                    chosen_vms = {c.vm_id for c in chosen}
                    reroute_flow_ids.extend(
                        f.flow_id for f in flows if f.vm in chosen_vms
                    )
            elif alert.kind is AlertKind.LOCAL_TOR:
                tor_alerted = True
            elif alert.kind is AlertKind.SERVER:
                assert alert.host is not None
                vms = pl.vms_on_host(alert.host)
                cands = [self._candidate(int(v), vm_alerts) for v in vms]
                cands = [c for c in cands if c.alert > 0]
                with self.profiler.section("priority"):
                    chosen = priority_select(cands, PriorityFactor.ONE)
                self._trace_priority(PriorityFactor.ONE, 1, cands, chosen)
                migrate_set.extend(c.vm_id for c in chosen)

        if tor_alerted:
            vms = pl.vms_in_rack(self.rack)
            cands = [self._candidate(int(v), vm_alerts) for v in vms]
            budget = max(1, int(self.beta * self.cluster.tor_capacity(self.rack)))
            with self.profiler.section("priority"):
                chosen = priority_select(cands, PriorityFactor.BETA, budget=budget)
            self._trace_priority(PriorityFactor.BETA, budget, cands, chosen)
            migrate_set.extend(c.vm_id for c in chosen)

        if self.metrics is not None and report.alerts_processed:
            self.metrics.counter(
                "sheriff_shim_alerts_total", rack=self.rack
            ).inc(report.alerts_processed)

        # rerouting first — cheaper and faster than migration (Sec. III-B)
        if reroute_flow_ids and self.flow_table is not None:
            with self.profiler.section("reroute"):
                ok, failed = flow_reroute(
                    self.flow_table, reroute_flow_ids, hot_switches
                )
            report.rerouted_flows = ok
            report.reroute_failures = failed
            if self.metrics is not None:
                self.metrics.counter(
                    "sheriff_flows_rerouted_total", rack=self.rack
                ).inc(ok)
                self.metrics.counter(
                    "sheriff_reroute_failures_total", rack=self.rack
                ).inc(failed)
            if tracer.enabled:
                tracer.emit(
                    FlowRerouted(
                        rack=self.rack,
                        rerouted=ok,
                        failed=failed,
                        flows=tuple(reroute_flow_ids),
                        hot_switches=tuple(sorted(hot_switches)),
                    )
                )

        migrate_set = [v for v in dict.fromkeys(migrate_set) if v not in frozen]
        report.selected_for_migration = migrate_set
        if migrate_set:
            report.predicted_slo_damage = self._predicted_damage(migrate_set)
            dest_hosts = self.shim.candidate_hosts()
            report.migration = vmmigration(
                self.cluster,
                self.cost_model,
                migrate_set,
                dest_hosts.tolist(),
                receivers,
                balance_weight=self.balance_weight,
                host_load=host_load,
                tracer=tracer,
                metrics=self.metrics,
                profiler=self.profiler,
                rack=self.rack,
                slo_scorer=self.slo_scorer,
            )
        return report

    def _predicted_damage(self, migrate_set: Sequence[int]) -> float:
        """Summed SLO damage the scorer predicts for the migration set."""
        if self.slo_scorer is None or not migrate_set:
            return 0.0
        pl = self.cluster.placement
        caps = [int(pl.vm_capacity[v]) for v in migrate_set]
        return float(self.slo_scorer.damage(migrate_set, caps).sum())

    # ------------------------------------------------------------------ #
    # plan/execute split (parallel round path)
    # ------------------------------------------------------------------ #
    def plan_round(
        self,
        alerts: Sequence[Alert],
        vm_alerts: Dict[int, float],
        frozen: frozenset = frozenset(),
        host_load=None,
        snapshot: Optional[FleetSnapshot] = None,
    ) -> ShimPlan:
        """The read-only half of Alg. 1: classify, PRIORITY, cost block.

        Safe to run concurrently with other shims' plans: it reads the
        (round-static) placement, flow table and cost model, and writes
        only its own :class:`ShimPlan`.  Selection, cost matrices and the
        first matching are computed by the same code paths as
        :meth:`process_round`, so :meth:`execute_plan` reproduces the
        serial results bit-for-bit.

        With *snapshot* (the engine's per-round :class:`FleetSnapshot`),
        membership queries and candidate construction run on the shared
        SoA arrays — bit-identical values, one gather instead of one call
        per VM.
        """
        plan = ShimPlan(rack=self.rack)
        pl = self.cluster.placement
        queue_events = self.tracer.enabled
        migrate_set: List[int] = []
        tor_alerted = False
        t_priority = 0.0

        for alert in alerts:
            if alert.rack != self.rack:
                raise ConfigurationError(
                    f"alert for rack {alert.rack} delivered to shim {self.rack}"
                )
            plan.alerts_processed += 1
            if alert.kind is AlertKind.OUTER_SWITCH:
                assert alert.switch is not None
                plan.hot_switches.add(alert.switch)
                if self.flow_table is not None:
                    flows = self.flow_table.flows_through(
                        alert.switch, from_rack=self.rack
                    )
                    if snapshot is not None:
                        cands = snapshot.candidates(
                            [f.vm for f in flows], vm_alerts
                        )
                    else:
                        cands = [self._candidate(f.vm, vm_alerts) for f in flows]
                    budget = max(1, int(self.alpha * self.cluster.tor_capacity(self.rack)))
                    t0 = perf_counter()
                    chosen = priority_select(
                        cands, PriorityFactor.ALPHA, budget=budget
                    )
                    t_priority += perf_counter() - t0
                    if queue_events:
                        plan.events.append(
                            self._priority_event(
                                PriorityFactor.ALPHA, budget, cands, chosen
                            )
                        )
                    chosen_vms = {c.vm_id for c in chosen}
                    plan.reroute_flow_ids.extend(
                        f.flow_id for f in flows if f.vm in chosen_vms
                    )
            elif alert.kind is AlertKind.LOCAL_TOR:
                tor_alerted = True
            elif alert.kind is AlertKind.SERVER:
                assert alert.host is not None
                if snapshot is not None:
                    cands = snapshot.alerted_candidates(
                        snapshot.vms_on_host(alert.host), vm_alerts
                    )
                else:
                    vms = pl.vms_on_host(alert.host)
                    cands = [self._candidate(int(v), vm_alerts) for v in vms]
                    cands = [c for c in cands if c.alert > 0]
                t0 = perf_counter()
                chosen = priority_select(cands, PriorityFactor.ONE)
                t_priority += perf_counter() - t0
                if queue_events:
                    plan.events.append(
                        self._priority_event(PriorityFactor.ONE, 1, cands, chosen)
                    )
                migrate_set.extend(c.vm_id for c in chosen)

        if tor_alerted:
            if snapshot is not None:
                cands = snapshot.candidates(
                    snapshot.vms_in_rack(self.rack), vm_alerts
                )
            else:
                vms = pl.vms_in_rack(self.rack)
                cands = [self._candidate(int(v), vm_alerts) for v in vms]
            budget = max(1, int(self.beta * self.cluster.tor_capacity(self.rack)))
            t0 = perf_counter()
            chosen = priority_select(cands, PriorityFactor.BETA, budget=budget)
            t_priority += perf_counter() - t0
            if queue_events:
                plan.events.append(
                    self._priority_event(PriorityFactor.BETA, budget, cands, chosen)
                )
            migrate_set.extend(c.vm_id for c in chosen)

        plan.migrate_set = [v for v in dict.fromkeys(migrate_set) if v not in frozen]
        if t_priority:
            plan.timings["priority"] = t_priority
        if plan.migrate_set:
            dest_hosts = self.shim.candidate_hosts()
            plan.block = build_cost_block(
                self.cluster,
                self.cost_model,
                plan.migrate_set,
                dest_hosts.tolist(),
                balance_weight=self.balance_weight,
                host_load=host_load,
                snapshot=snapshot,
                slo_scorer=self.slo_scorer,
            )
        return plan

    def execute_plan(
        self,
        plan: ShimPlan,
        receivers: ReceiverRegistry,
        shard_map=None,
    ) -> RoundReport:
        """The serialized half of Alg. 1: reroutes, REQUESTs, bookkeeping.

        Main thread only; shims execute in deterministic rack order because
        the FCFS receiver protocol is order-sensitive by design.
        *shard_map* (rack -> planner shard) makes the REQUEST loop count
        cross-shard traffic when the plan came from a sharded pool.
        """
        report = RoundReport(rack=self.rack)
        report.alerts_processed = plan.alerts_processed
        tracer = self.tracer
        for event in plan.events:
            tracer.emit(event)
        for name, secs in plan.timings.items():
            self.profiler.add(name, secs)

        if self.metrics is not None and report.alerts_processed:
            self.metrics.counter(
                "sheriff_shim_alerts_total", rack=self.rack
            ).inc(report.alerts_processed)

        # rerouting first — cheaper and faster than migration (Sec. III-B)
        if plan.reroute_flow_ids and self.flow_table is not None:
            with self.profiler.section("reroute"):
                ok, failed = flow_reroute(
                    self.flow_table, plan.reroute_flow_ids, plan.hot_switches
                )
            report.rerouted_flows = ok
            report.reroute_failures = failed
            if self.metrics is not None:
                self.metrics.counter(
                    "sheriff_flows_rerouted_total", rack=self.rack
                ).inc(ok)
                self.metrics.counter(
                    "sheriff_reroute_failures_total", rack=self.rack
                ).inc(failed)
            if tracer.enabled:
                tracer.emit(
                    FlowRerouted(
                        rack=self.rack,
                        rerouted=ok,
                        failed=failed,
                        flows=tuple(plan.reroute_flow_ids),
                        hot_switches=tuple(sorted(plan.hot_switches)),
                    )
                )

        report.selected_for_migration = plan.migrate_set
        if plan.migrate_set:
            report.predicted_slo_damage = self._predicted_damage(plan.migrate_set)
        if plan.block is not None:
            report.migration = run_planned_migration(
                self.cluster,
                plan.block,
                receivers,
                tracer=tracer,
                metrics=self.metrics,
                profiler=self.profiler,
                rack=self.rack,
                shard_map=shard_map,
            )
        return report

    def _priority_event(
        self,
        factor: PriorityFactor,
        budget: int,
        cands: Sequence[CandidateVM],
        chosen: Sequence[CandidateVM],
    ) -> PrioritySelected:
        return PrioritySelected(
            rack=self.rack,
            factor=factor.name,
            budget=budget,
            candidates=len(cands),
            selected=tuple(c.vm_id for c in chosen),
        )

    def _trace_priority(
        self,
        factor: PriorityFactor,
        budget: int,
        cands: Sequence[CandidateVM],
        chosen: Sequence[CandidateVM],
    ) -> None:
        if self.tracer.enabled:
            self.tracer.emit(
                PrioritySelected(
                    rack=self.rack,
                    factor=factor.name,
                    budget=budget,
                    candidates=len(cands),
                    selected=tuple(c.vm_id for c in chosen),
                )
            )
