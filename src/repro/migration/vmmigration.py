"""VMMIGRATION (Alg. 3): match, request, migrate.

Each iteration builds the bipartite cost graph between the remaining
candidate VMs ``F`` and the destination hosts available at neighbor
delegations ``T``, solves minimum-weight matching, then sends REQUESTs
(Alg. 4).  ACKed VMs are reserved for migration and leave ``F``;
REJECTed VMs stay and are re-matched against the updated availability in
the next iteration, exactly the paper's retry loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.costs.model import CostModel
from repro.errors import MigrationError
from repro.migration.matching import hungarian
from repro.migration.request import ReceiverRegistry, RequestOutcome
from repro.obs.events import MatchingSolved, RequestSent
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import NULL_PROFILER
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["MigrationStats", "vmmigration"]


def _greedy_assign(cost: np.ndarray) -> np.ndarray:
    """Cheapest-edge-first partial assignment; -1 marks unassigned rows."""
    n, m = cost.shape
    out = np.full(n, -1, dtype=np.int64)
    finite = np.isfinite(cost)
    order = np.argsort(cost, axis=None)
    used_rows = np.zeros(n, dtype=bool)
    used_cols = np.zeros(m, dtype=bool)
    for flat in order:
        r, c = divmod(int(flat), m)
        if not finite[r, c]:
            break  # sorted ascending: everything after is inf too
        if used_rows[r] or used_cols[c]:
            continue
        out[r] = c
        used_rows[r] = True
        used_cols[c] = True
    return out


@dataclass
class MigrationStats:
    """Bookkeeping of one VMMIGRATION invocation."""

    requested: int = 0
    acked: int = 0
    rejected: int = 0
    total_cost: float = 0.0
    search_space: int = 0
    """Candidate (VM, destination-host) pairs examined — Fig. 12/14 metric."""
    iterations: int = 0
    unplaced: List[int] = field(default_factory=list)
    moves: List[Tuple[int, int, float]] = field(default_factory=list)
    """Accepted (vm, dst_host, cost) triples."""


def vmmigration(
    cluster: Cluster,
    cost_model: CostModel,
    candidates: Sequence[int],
    destination_hosts: Iterable[int],
    receivers: ReceiverRegistry,
    *,
    max_iterations: int = 8,
    balance_weight: float = 50.0,
    host_load: Optional[np.ndarray] = None,
    tracer: Tracer = NULL_TRACER,
    metrics: Optional[MetricsRegistry] = None,
    profiler=NULL_PROFILER,
    rack: Optional[int] = None,
    slo_scorer=None,
) -> MigrationStats:
    """Run Alg. 3 for one delegation's candidate set.

    Parameters
    ----------
    candidates:
        VM ids selected by PRIORITY (the set ``F``).
    destination_hosts:
        Host ids at neighbor delegations (``T``); availability is
        re-examined each iteration because earlier ACKs consume capacity.
    receivers:
        The round's shared receiver protocol state; accepted moves are
        reserved there (call ``commit_round`` after all shims ran).
    balance_weight:
        Load-aware destination steering: the matching minimizes
        ``Cost + balance_weight · load_fraction(dst)``, so among
        similarly-priced destinations the emptier host wins.  This is the
        mechanism behind the paper's balancing result (Figs. 9/10) — an
        overload-relief migration must not land on another hot host.
        ``stats.total_cost`` always reports the *true* Eq. (1) cost.
    host_load:
        Optional per-host *measured* utilization in [0, 1] (what the shim's
        monitoring actually sees).  When given, steering uses it instead of
        the placement fill fraction — a host packed with idle VMs is a fine
        destination, one running hot is not.
    tracer, metrics, profiler:
        Observability handles (see :mod:`repro.obs`): the tracer receives
        :class:`~repro.obs.events.MatchingSolved` /
        :class:`~repro.obs.events.RequestSent` events, the registry the
        ``sheriff_requests_*`` / ``sheriff_migration_cost_total`` /
        ``sheriff_search_space_total`` counter families (labeled by
        *rack*), and the profiler the ``matching`` / ``request`` sections.
        All default to disabled no-ops.
    rack:
        The calling shim's rack id, used only to label metrics/events.
    slo_scorer:
        Optional :class:`~repro.slo.scoring.SloScorer`
        (``SheriffConfig(scoring="slo")``): the matching minimizes
        ``Cost + steering + predicted SLO damage`` so the assignment
        trades network bytes against application pain.  ``None``
        (default) keeps the pure Eq. (1) + steering matrix bit-for-bit.
        ``stats.total_cost`` always reports the true Eq. (1) cost.

    Notes
    -----
    Per the paper, a VM left unmatched (every destination rejected or
    infeasible) is reported in ``stats.unplaced``; Alg. 3 would have the
    shim "recalculate possible migration destinations", which here is the
    next management round.
    """
    stats = MigrationStats()
    remaining = [int(v) for v in dict.fromkeys(candidates)]
    hosts = np.asarray(sorted(set(int(h) for h in destination_hosts)), dtype=np.int64)
    if metrics is not None:
        lbl = {"rack": rack} if rack is not None else {}
        c_sent = metrics.counter("sheriff_requests_sent_total", **lbl)
        c_ack = metrics.counter("sheriff_requests_acked_total", **lbl)
        c_rej = metrics.counter("sheriff_requests_rejected_total", **lbl)
        c_cost = metrics.counter("sheriff_migration_cost_total", **lbl)
        c_space = metrics.counter("sheriff_search_space_total", **lbl)
        c_unplaced = metrics.counter("sheriff_unplaced_total", **lbl)
        h_match = metrics.histogram("sheriff_matching_size", **lbl)
        h_cost = metrics.histogram("sheriff_move_cost", **lbl)
    if not remaining:
        return stats
    if hosts.size == 0:
        stats.unplaced = remaining
        if metrics is not None:
            c_unplaced.inc(len(remaining))
        return stats
    pl = cluster.placement
    host_racks = pl.host_rack[hosts]

    for _ in range(max_iterations):
        if not remaining:
            break
        stats.iterations += 1
        # availability net of this round's promises is known only to the
        # receivers; the sender uses last-known free capacity as a filter
        free = np.asarray([pl.free_capacity(int(h)) for h in hosts])
        if host_load is not None:
            load_frac = np.asarray(host_load, dtype=np.float64)[hosts]
        else:
            load_frac = pl.host_used[hosts] / pl.host_capacity[hosts]
        steer = balance_weight * load_frac
        cost = np.full((len(remaining), hosts.size), np.inf)
        true_cost = np.full((len(remaining), hosts.size), np.inf)
        if slo_scorer is not None:
            caps = [int(pl.vm_capacity[v]) for v in remaining]
            addend = slo_scorer.addend(
                slo_scorer.damage(remaining, caps), load_frac
            )
        for r, vm in enumerate(remaining):
            per_rack = cost_model.migration_cost_vector(vm)
            need = int(pl.vm_capacity[vm])
            feasible = free >= need
            true_cost[r, feasible] = per_rack[host_racks[feasible]]
            if slo_scorer is None:
                cost[r, feasible] = true_cost[r, feasible] + steer[feasible]
            else:
                # same operand order as the planned path's block build:
                # (true_cost + steer) + addend
                cost[r, feasible] = (
                    true_cost[r, feasible] + steer[feasible]
                ) + addend[r, feasible]
        if stats.iterations == 1:
            # retries re-examine subsets of the same pairs; the search
            # space metric (Fig. 12/14) counts distinct (VM, host) pairs
            stats.search_space = cost.size
            if metrics is not None:
                c_space.inc(cost.size)
        # rows with no feasible destination cannot enter the matching
        has_dest = np.isfinite(cost).any(axis=1)
        rows = np.nonzero(has_dest)[0]
        if rows.size == 0:
            break
        sub = cost[rows]
        if rows.size > hosts.size:
            # more VMs than hosts: match the cheapest |hosts| rows
            best_per_row = sub.min(axis=1)
            order = np.argsort(best_per_row)[: hosts.size]
            rows = rows[order]
            sub = cost[rows]
        t_solve = perf_counter() if tracer.enabled else 0.0
        fallback = False
        with profiler.section("matching"):
            try:
                assignment, _ = hungarian(sub)
            except MigrationError:
                # no perfect matching (forbidden pairs funnel several VMs
                # onto one host): fall back to greedy cheapest-first
                # assignment so the placeable subset still moves
                fallback = True
                assignment = _greedy_assign(sub)
        if metrics is not None:
            h_match.observe(rows.size)
        if tracer.enabled:
            matched = sum(
                1
                for k, col in enumerate(assignment)
                if col >= 0 and np.isfinite(sub[k, int(col)])
            )
            tracer.emit(
                MatchingSolved(
                    rack=rack,
                    rows=int(rows.size),
                    cols=int(hosts.size),
                    matched=int(matched),
                    iteration=stats.iterations,
                    fallback=fallback,
                    elapsed_s=perf_counter() - t_solve,
                )
            )
        progressed = False
        next_remaining = list(remaining)
        with profiler.section("request"):
            for k, (rr, col) in enumerate(zip(rows, assignment)):
                if col < 0 or not np.isfinite(sub[k, int(col)]):
                    continue
                vm = remaining[int(rr)]
                host = int(hosts[int(col)])
                dst_rack = int(host_racks[int(col)])
                stats.requested += 1
                if metrics is not None:
                    c_sent.inc()
                if tracer.enabled:
                    tracer.emit(
                        RequestSent(
                            vm=vm, dst_host=host, dst_rack=dst_rack, src_rack=rack
                        )
                    )
                outcome = receivers.request(vm, host, dst_rack)
                if outcome is RequestOutcome.ACK:
                    c = float(true_cost[int(rr), int(col)])
                    stats.acked += 1
                    stats.total_cost += c
                    stats.moves.append((vm, host, c))
                    next_remaining.remove(vm)
                    progressed = True
                    if metrics is not None:
                        c_ack.inc()
                        c_cost.inc(c)
                        h_cost.observe(c)
                else:
                    stats.rejected += 1
                    if metrics is not None:
                        c_rej.inc()
        remaining = next_remaining
        if not progressed:
            break
    stats.unplaced = remaining
    if metrics is not None:
        c_unplaced.inc(len(remaining))
    return stats
