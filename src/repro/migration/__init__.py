"""Distributed Alert-Migration algorithms (Sec. V-B, Algs. 1–4).

* :mod:`~repro.migration.priority` — Alg. 2, the knapsack-style PRIORITY
  selection of migration candidates;
* :mod:`~repro.migration.matching` — minimal weighted matching
  (from-scratch Kuhn–Munkres with potentials, the Alg. 3 kernel);
* :mod:`~repro.migration.request` — Alg. 4, the FCFS REQUEST/ACK/REJECT
  receiver protocol;
* :mod:`~repro.migration.vmmigration` — Alg. 3, the match-request-migrate
  loop;
* :mod:`~repro.migration.manager` — Alg. 1, the per-shim framework
  dispatching on alert kinds;
* :mod:`~repro.migration.reroute` — FLOWREROUTE for outer-switch alerts.
"""

from repro.migration.priority import PriorityFactor, priority_select
from repro.migration.matching import hungarian
from repro.migration.request import ReceiverRegistry, RequestOutcome
from repro.migration.vmmigration import MigrationStats, vmmigration
from repro.migration.reroute import FlowTable, flow_reroute


def __getattr__(name):
    # ShimManager sits *above* repro.parallel.costblock, which in turn
    # imports this package's algorithm modules; exporting it lazily keeps
    # the package importable from either direction.
    if name == "ShimManager":
        from repro.migration.manager import ShimManager

        return ShimManager
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "PriorityFactor",
    "priority_select",
    "hungarian",
    "ReceiverRegistry",
    "RequestOutcome",
    "vmmigration",
    "MigrationStats",
    "ShimManager",
    "FlowTable",
    "flow_reroute",
]
