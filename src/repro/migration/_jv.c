/* Jonker-Volgenant shortest-augmenting-path kernel (Alg. 3 matcher).
 *
 * This is the C twin of the numpy inner loop in ``matching.hungarian``:
 * every floating-point operation runs in the same order on the same
 * values ((c - u) - v relaxation, per-step ``minv -= delta`` over still-
 * unused columns, strict-less tie-breaking, first-minimum argmin scan),
 * so with IEEE-754 doubles the assignments it produces are bit-identical
 * to the pure-numpy path -- including how cost ties break.  Compile with
 * plain -O2 and WITHOUT -ffast-math; the build helper in matching.py
 * enforces that.
 *
 * Return codes:
 *   0  solved; match_out[i] = 0-based column of row i
 *   1  infeasible: augmenting tree exhausted every column
 *   2  infeasible: forbidden pairs block every augmenting path
 *   3  internal error: incomplete matching (unreachable)
 *  -1  allocation failure
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>

int jv_solve(const double *c, int64_t n, int64_t m, int64_t *match_out)
{
    /* 1-based columns with sentinel column 0, as in the numpy version. */
    double *u = calloc((size_t)(n + 1), sizeof(double));
    double *v = calloc((size_t)(m + 1), sizeof(double));
    double *minv = malloc((size_t)(m + 1) * sizeof(double));
    int64_t *match = calloc((size_t)(m + 1), sizeof(int64_t));
    int64_t *way = calloc((size_t)(m + 1), sizeof(int64_t));
    int64_t *tree = malloc((size_t)(m + 1) * sizeof(int64_t));
    unsigned char *active = malloc((size_t)(m + 1) * sizeof(unsigned char));
    int rc = 0;

    if (!u || !v || !minv || !match || !way || !tree || !active) {
        rc = -1;
        goto done;
    }

    for (int64_t i = 1; i <= n; i++) {
        match[0] = i;
        int64_t j0 = 0;
        for (int64_t j = 1; j <= m; j++) {
            minv[j] = INFINITY;
            active[j] = 1;
        }
        tree[0] = 0;
        int64_t tsize = 1;
        int64_t n_active = m;
        for (;;) {
            int64_t i0 = match[j0];
            const double *row = c + (i0 - 1) * m;
            double ui0 = u[i0];
            for (int64_t j = 1; j <= m; j++) {
                if (!active[j])
                    continue;
                double cur = (row[j - 1] - ui0) - v[j];
                if (cur < minv[j]) {
                    minv[j] = cur;
                    way[j] = j0;
                }
            }
            /* first minimum over active columns, ascending: np.argmin */
            int64_t jb = 0;
            double delta = INFINITY;
            for (int64_t j = 1; j <= m; j++) {
                if (active[j] && minv[j] < delta) {
                    delta = minv[j];
                    jb = j;
                }
            }
            if (!isfinite(delta)) {
                rc = (n_active == 0) ? 1 : 2;
                goto done;
            }
            for (int64_t k = 0; k < tsize; k++) {
                int64_t jt = tree[k];
                u[match[jt]] += delta;
                v[jt] -= delta;
            }
            for (int64_t j = 1; j <= m; j++)
                if (active[j])
                    minv[j] -= delta;
            j0 = jb;
            active[jb] = 0;
            n_active--;
            tree[tsize++] = j0;
            if (match[j0] == 0)
                break;
        }
        while (j0 != 0) {
            int64_t j1 = way[j0];
            match[j0] = match[j1];
            j0 = j1;
        }
    }

    for (int64_t i = 0; i < n; i++)
        match_out[i] = -1;
    for (int64_t j = 1; j <= m; j++)
        if (match[j] > 0)
            match_out[match[j] - 1] = j - 1;
    for (int64_t i = 0; i < n; i++)
        if (match_out[i] < 0) {
            rc = 3; /* "internal error: incomplete matching" (unreachable) */
            goto done;
        }

done:
    free(u);
    free(v);
    free(minv);
    free(match);
    free(way);
    free(tree);
    free(active);
    return rc;
}
