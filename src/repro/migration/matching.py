"""Minimal weighted bipartite matching — Kuhn–Munkres (Alg. 3 kernel).

Alg. 3 matches candidate VMs to destination slots by minimum total
migration cost, "such as Kuhn-Munkres algorithm (KM) with relaxation".
This is a from-scratch implementation of the O(n³) shortest-augmenting-
path formulation with dual potentials (the Jonker–Volgenant refinement of
KM); the test-suite cross-checks it against
``scipy.optimize.linear_sum_assignment`` on random instances.

Rectangular instances (rows ≤ columns) are supported directly; entries of
``np.inf`` mark forbidden pairs (e.g. a destination whose delegation would
reject the VM outright).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError, MigrationError

__all__ = ["hungarian"]


def hungarian(cost: np.ndarray) -> Tuple[np.ndarray, float]:
    """Minimum-cost perfect matching of rows into columns.

    Parameters
    ----------
    cost:
        ``(n, m)`` matrix with ``n <= m``; ``inf`` marks forbidden pairs.

    Returns
    -------
    (assignment, total):
        ``assignment[i]`` is the column matched to row ``i``; *total* is
        the summed cost.

    Raises
    ------
    MigrationError
        If no feasible perfect matching of the rows exists (every
        completion uses a forbidden pair).
    """
    c = np.asarray(cost, dtype=np.float64)
    if c.ndim != 2:
        raise ConfigurationError(f"cost must be 2-D, got shape {c.shape}")
    n, m = c.shape
    if n == 0:
        return np.empty(0, dtype=np.int64), 0.0
    if n > m:
        raise ConfigurationError(
            f"rows ({n}) must not exceed columns ({m}); transpose or pad the instance"
        )
    if np.isnan(c).any() or (c == -np.inf).any():
        raise ConfigurationError("cost entries must be > -inf and not NaN")

    # Shortest augmenting path with potentials; 1-based sentinel column 0.
    INF = np.inf
    u = np.zeros(n + 1)  # row potentials
    v = np.zeros(m + 1)  # column potentials
    match = np.zeros(m + 1, dtype=np.int64)  # row matched to column (0 = free)
    way = np.zeros(m + 1, dtype=np.int64)

    for i in range(1, n + 1):
        match[0] = i
        j0 = 0
        minv = np.full(m + 1, INF)
        used = np.zeros(m + 1, dtype=bool)
        while True:
            used[j0] = True
            i0 = match[j0]
            j1 = 0
            delta = INF
            # vectorized relaxation over all unused columns
            cols = np.nonzero(~used[1:])[0] + 1
            if cols.size == 0:
                raise MigrationError("no feasible assignment (all columns exhausted)")
            cur = c[i0 - 1, cols - 1] - u[i0] - v[cols]
            better = cur < minv[cols]
            minv[cols] = np.where(better, cur, minv[cols])
            way[cols[better]] = j0
            jbest = cols[np.argmin(minv[cols])]
            delta = minv[jbest]
            if not np.isfinite(delta):
                raise MigrationError(
                    "no feasible assignment: forbidden pairs block every augmenting path"
                )
            # update potentials
            upd = used.copy()
            u[match[upd]] += delta
            v[np.nonzero(upd)[0]] -= delta
            minv[~used] -= delta
            j0 = int(jbest)
            if match[j0] == 0:
                break
        # augment along the alternating path
        while j0 != 0:
            j1 = int(way[j0])
            match[j0] = match[j1]
            j0 = j1

    assignment = np.full(n, -1, dtype=np.int64)
    for j in range(1, m + 1):
        if match[j] > 0:
            assignment[match[j] - 1] = j - 1
    if (assignment < 0).any():
        raise MigrationError("internal error: incomplete matching")
    total = float(c[np.arange(n), assignment].sum())
    return assignment, total
