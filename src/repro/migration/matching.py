"""Minimal weighted bipartite matching — Kuhn–Munkres (Alg. 3 kernel).

Alg. 3 matches candidate VMs to destination slots by minimum total
migration cost, "such as Kuhn-Munkres algorithm (KM) with relaxation".
This is a from-scratch implementation of the O(n³) shortest-augmenting-
path formulation with dual potentials (the Jonker–Volgenant refinement of
KM); the test-suite cross-checks it against
``scipy.optimize.linear_sum_assignment`` on random instances.

Rectangular instances (rows ≤ columns) are supported directly; entries of
``np.inf`` mark forbidden pairs (e.g. a destination whose delegation would
reject the VM outright).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, MigrationError

__all__ = ["hungarian"]


# --------------------------------------------------------------------------- #
# Optional compiled kernel.  ``_jv.c`` is the line-for-line C twin of the
# numpy inner loop below: identical IEEE-754 operation order, so identical
# assignments bit-for-bit (the fuzz suite in tests/migration cross-checks
# them).  It is compiled once per source hash with plain ``-O2`` (never
# ``-ffast-math``) and cached next to the package; anything going wrong —
# no compiler, sandboxed tmpdir, bad toolchain — silently falls back to
# the numpy path, which remains the reference implementation.
# --------------------------------------------------------------------------- #
_JV_SRC = Path(__file__).with_name("_jv.c")
_JV_BUILD_DIR = Path(__file__).with_name("_jv_build")


def _load_jv_kernel():
    if os.environ.get("SHERIFF_PURE_PYTHON"):
        return None
    try:
        src = _JV_SRC.read_bytes()
        tag = hashlib.sha256(src).hexdigest()[:16]
        so_path = _JV_BUILD_DIR / f"_jv-{tag}.so"
        if not so_path.exists():
            _JV_BUILD_DIR.mkdir(exist_ok=True)
            with tempfile.NamedTemporaryFile(
                dir=_JV_BUILD_DIR, suffix=".so", delete=False
            ) as tmp:
                tmp_path = Path(tmp.name)
            cmd = [
                "gcc",
                "-O2",
                "-fPIC",
                "-shared",
                "-o",
                str(tmp_path),
                str(_JV_SRC),
                "-lm",
            ]
            res = subprocess.run(
                cmd, capture_output=True, timeout=60, check=False
            )
            if res.returncode != 0:
                tmp_path.unlink(missing_ok=True)
                return None
            os.replace(tmp_path, so_path)  # atomic: safe under fork races
        lib = ctypes.CDLL(str(so_path))
        fn = lib.jv_solve
        fn.restype = ctypes.c_int
        fn.argtypes = [
            ctypes.POINTER(ctypes.c_double),
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.POINTER(ctypes.c_int64),
        ]
        return fn
    except (OSError, subprocess.SubprocessError, AttributeError):
        return None


_JV_KERNEL = _load_jv_kernel()


def _hungarian_c(c: np.ndarray, n: int, m: int) -> Optional[np.ndarray]:
    """Solve via the compiled kernel; ``None`` means "use the numpy path"."""
    if _JV_KERNEL is None:
        return None
    cc = np.ascontiguousarray(c, dtype=np.float64)
    assignment = np.empty(n, dtype=np.int64)
    rc = _JV_KERNEL(
        cc.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
        n,
        m,
        assignment.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
    )
    if rc == 0:
        return assignment
    if rc == 1:
        raise MigrationError("no feasible assignment (all columns exhausted)")
    if rc == 2:
        raise MigrationError(
            "no feasible assignment: forbidden pairs block every augmenting path"
        )
    if rc == 3:
        raise MigrationError("internal error: incomplete matching")
    return None  # allocation failure: retry on the numpy path


def hungarian(cost: np.ndarray) -> Tuple[np.ndarray, float]:
    """Minimum-cost perfect matching of rows into columns.

    Parameters
    ----------
    cost:
        ``(n, m)`` matrix with ``n <= m``; ``inf`` marks forbidden pairs.

    Returns
    -------
    (assignment, total):
        ``assignment[i]`` is the column matched to row ``i``; *total* is
        the summed cost.

    Raises
    ------
    MigrationError
        If no feasible perfect matching of the rows exists (every
        completion uses a forbidden pair).
    """
    c = np.asarray(cost, dtype=np.float64)
    if c.ndim != 2:
        raise ConfigurationError(f"cost must be 2-D, got shape {c.shape}")
    n, m = c.shape
    if n == 0:
        return np.empty(0, dtype=np.int64), 0.0
    if n > m:
        raise ConfigurationError(
            f"rows ({n}) must not exceed columns ({m}); transpose or pad the instance"
        )
    if np.isnan(c).any() or (c == -np.inf).any():
        raise ConfigurationError("cost entries must be > -inf and not NaN")

    assignment = _hungarian_c(c, n, m)
    if assignment is not None:
        total = float(c[np.arange(n), assignment].sum())
        return assignment, total

    # Shortest augmenting path with potentials; 1-based sentinel column 0.
    #
    # The inner Dijkstra step works on full-width contiguous buffers with
    # boolean masks instead of `np.nonzero` + fancy gathers: every float
    # operation runs in the same order on the same values as the gathered
    # formulation (relaxation is `(c - u) - v`, then the per-step `-= delta`
    # over still-unused columns), so assignments — including how cost ties
    # break — are bit-identical, just ~1.7× faster on the fat matrices
    # Alg. 3 produces at paper scale.
    INF = np.inf
    u = np.zeros(n + 1)  # row potentials
    v = np.zeros(m + 1)  # column potentials
    match = np.zeros(m + 1, dtype=np.int64)  # row matched to column (0 = free)
    way = np.zeros(m + 1, dtype=np.int64)
    v1 = v[1:]
    way1 = way[1:]
    minv1 = np.empty(m)  # minv over real columns 1..m
    active = np.empty(m, dtype=bool)  # ~used over real columns
    cur = np.empty(m)
    better = np.empty(m, dtype=bool)
    masked = np.empty(m)
    tree = np.empty(m + 1, dtype=np.int64)  # visited columns, sentinel first

    for i in range(1, n + 1):
        match[0] = i
        j0 = 0
        minv1.fill(INF)
        active.fill(True)
        tree[0] = 0
        tsize = 1
        while True:
            i0 = match[j0]
            # relax all columns at once; used ones are masked out below
            np.subtract(c[i0 - 1], u[i0], out=cur)
            np.subtract(cur, v1, out=cur)
            np.less(cur, minv1, out=better)
            better &= active
            np.copyto(minv1, cur, where=better)
            way1[better] = j0
            np.copyto(masked, INF)
            np.copyto(masked, minv1, where=active)
            jb = int(np.argmin(masked))
            delta = masked[jb]
            if not np.isfinite(delta):
                if not active.any():
                    raise MigrationError(
                        "no feasible assignment (all columns exhausted)"
                    )
                raise MigrationError(
                    "no feasible assignment: forbidden pairs block every augmenting path"
                )
            # update potentials along the visited tree
            visited = tree[:tsize]
            u[match[visited]] += delta
            v[visited] -= delta
            np.subtract(minv1, delta, out=minv1, where=active)
            j0 = jb + 1
            active[jb] = False
            tree[tsize] = j0
            tsize += 1
            if match[j0] == 0:
                break
        # augment along the alternating path
        while j0 != 0:
            j1 = int(way[j0])
            match[j0] = match[j1]
            j0 = j1

    assignment = np.full(n, -1, dtype=np.int64)
    for j in range(1, m + 1):
        if match[j] > 0:
            assignment[match[j] - 1] = j - 1
    if (assignment < 0).any():
        raise MigrationError("internal error: incomplete matching")
    total = float(c[np.arange(n), assignment].sum())
    return assignment, total
