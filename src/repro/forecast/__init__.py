"""Time-series forecasting: ARIMA, NARNET and dynamic model selection.

Implements Sec. IV of the paper from scratch on numpy/scipy:

* :mod:`~repro.forecast.arima` — ARIMA(p, d, q) with conditional-sum-of-
  squares estimation and recursive MMSE h-step forecasts (Eq. 12);
* :mod:`~repro.forecast.boxjenkins` — Box–Jenkins order selection
  (difference to stationarity, AIC grid over (p, q));
* :mod:`~repro.forecast.narnet` — nonlinear autoregressive neural network
  (Eq. 13) with analytic-gradient L-BFGS training;
* :mod:`~repro.forecast.selection` — the dynamic model selector that picks,
  per step, the model with minimum trailing MSE over period ``T_p``
  (Eq. 14).
"""

from repro.forecast.base import Forecaster
from repro.forecast.lag import difference, lag_matrix, undifference
from repro.forecast.acf import acf, pacf, ljung_box
from repro.forecast.stationarity import choose_difference_order, is_stationary
from repro.forecast.arima import ARIMA
from repro.forecast.boxjenkins import BoxJenkinsResult, select_arima_order
from repro.forecast.narnet import NARNET
from repro.forecast.naive import NaiveLast, SeasonalNaive
from repro.forecast.sarima import SeasonalARIMA, seasonal_difference, seasonal_undifference
from repro.forecast.selection import DynamicModelSelector, rolling_one_step
from repro.forecast.metrics import mae, mape, mse, rmse
from repro.forecast.evaluation import BacktestResult, backtest, compare_models, horizon_curve
from repro.forecast.diagnostics import ResidualDiagnostics, diagnose, jarque_bera

__all__ = [
    "Forecaster",
    "difference",
    "undifference",
    "lag_matrix",
    "acf",
    "pacf",
    "ljung_box",
    "choose_difference_order",
    "is_stationary",
    "ARIMA",
    "select_arima_order",
    "BoxJenkinsResult",
    "NARNET",
    "NaiveLast",
    "SeasonalARIMA",
    "seasonal_difference",
    "seasonal_undifference",
    "SeasonalNaive",
    "DynamicModelSelector",
    "rolling_one_step",
    "mse",
    "rmse",
    "mae",
    "mape",
    "BacktestResult",
    "backtest",
    "horizon_curve",
    "compare_models",
    "ResidualDiagnostics",
    "diagnose",
    "jarque_bera",
]
