"""Residual diagnostics — the *checking* step of Box–Jenkins.

Identification and estimation (``boxjenkins``, ``arima``) are only two
thirds of the methodology; the paper's "well explains the original time
series" claim is verified by checking that the fitted model's residuals
look like the white noise ``Z_t ~ WN(0, σ²)`` they are supposed to be:

* **whiteness** — Ljung–Box portmanteau on the residual ACF;
* **zero mean** — one-sample t-test;
* **normality** — Jarque–Bera on skewness/kurtosis (Gaussian innovations
  justify the MMSE-forecast intervals);
* **homoskedasticity** — Ljung–Box on *squared* residuals (ARCH-type
  structure would invalidate constant-σ² intervals).

:func:`diagnose` bundles everything into one record with an overall
verdict at a configurable significance level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import stats

from repro.errors import ForecastError
from repro.forecast.acf import ljung_box

__all__ = ["ResidualDiagnostics", "diagnose", "jarque_bera"]


def jarque_bera(x: np.ndarray) -> tuple[float, float]:
    """Jarque–Bera statistic and p-value (χ² with 2 dof)."""
    arr = np.asarray(x, dtype=np.float64).ravel()
    n = arr.shape[0]
    if n < 8:
        raise ForecastError(f"need >= 8 residuals for Jarque-Bera, got {n}")
    sd = arr.std()
    if sd < 1e-15:
        return 0.0, 1.0  # constant residuals: degenerate but not non-normal
    z = (arr - arr.mean()) / sd
    skew = float((z**3).mean())
    kurt = float((z**4).mean())
    jb = n / 6.0 * (skew**2 + 0.25 * (kurt - 3.0) ** 2)
    return float(jb), float(stats.chi2.sf(jb, 2))


@dataclass(frozen=True)
class ResidualDiagnostics:
    """All residual checks for one fitted model."""

    n: int
    mean: float
    std: float
    ljung_box_stat: float
    ljung_box_p: float
    mean_zero_p: float
    jarque_bera_stat: float
    jarque_bera_p: float
    arch_stat: float
    arch_p: float
    alpha: float

    @property
    def white(self) -> bool:
        """Residuals are uncorrelated at the chosen level."""
        return self.ljung_box_p > self.alpha

    @property
    def unbiased(self) -> bool:
        return self.mean_zero_p > self.alpha

    @property
    def normal(self) -> bool:
        return self.jarque_bera_p > self.alpha

    @property
    def homoskedastic(self) -> bool:
        return self.arch_p > self.alpha

    @property
    def adequate(self) -> bool:
        """The checks a forecaster must pass to be trusted for alerts.

        Whiteness and unbiasedness are essential (a correlated or biased
        residual means exploitable structure was left behind); normality
        and homoskedasticity only affect interval calibration, so they do
        not veto adequacy.
        """
        return self.white and self.unbiased


def diagnose(
    residuals: np.ndarray,
    *,
    fitted_params: int = 0,
    lags: Optional[int] = None,
    alpha: float = 0.05,
) -> ResidualDiagnostics:
    """Run the full diagnostic battery on a residual series.

    Parameters
    ----------
    residuals:
        In-sample one-step residuals (e.g. :meth:`ARIMA.residuals`).
    fitted_params:
        Number of estimated ARMA coefficients (adjusts the Ljung–Box
        degrees of freedom).
    lags:
        Portmanteau lags; default ``min(20, n // 5)``.
    alpha:
        Significance level for the boolean verdicts.
    """
    e = np.asarray(residuals, dtype=np.float64).ravel()
    n = e.shape[0]
    if n < 20:
        raise ForecastError(f"need >= 20 residuals to diagnose, got {n}")
    if not (0.0 < alpha < 1.0):
        raise ForecastError(f"alpha must be in (0, 1), got {alpha}")
    if lags is None:
        lags = min(20, n // 5)
    lags = max(lags, fitted_params + 1)

    lb_stat, lb_p = ljung_box(e, lags, fitted_params=fitted_params)
    sd = e.std(ddof=1)
    if sd < 1e-15:
        t_p = 1.0
    else:
        t = e.mean() / (sd / np.sqrt(n))
        t_p = float(2.0 * stats.t.sf(abs(t), n - 1))
    jb_stat, jb_p = jarque_bera(e)
    e2 = e**2
    if e2.std() < 1e-15:
        arch_stat, arch_p = 0.0, 1.0
    else:
        arch_stat, arch_p = ljung_box(e2, lags)
    return ResidualDiagnostics(
        n=n,
        mean=float(e.mean()),
        std=float(sd),
        ljung_box_stat=lb_stat,
        ljung_box_p=lb_p,
        mean_zero_p=t_p,
        jarque_bera_stat=jb_stat,
        jarque_bera_p=jb_p,
        arch_stat=arch_stat,
        arch_p=arch_p,
        alpha=alpha,
    )
