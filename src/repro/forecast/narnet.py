"""Nonlinear autoregressive neural network (NARNET, Sec. IV-B).

``NARNET(ni, nh)`` predicts ``Y_t = F(Y_{t-1}, ..., Y_{t-ni}) + ε`` with a
single tanh hidden layer of ``nh`` units and a linear output — the same
architecture MATLAB's ``narnet`` trains (the paper uses 20 hidden units).

Training is deterministic given a seed: inputs are z-scored, weights start
from small seeded Gaussians, and the full-batch loss (MSE + L2) is
minimized with L-BFGS using an **analytic** back-propagated gradient (one
matmul-heavy function evaluation, no per-sample loop).  Several restarts
guard against bad local minima; the best by training loss wins.

Multi-step forecasts run closed-loop: each prediction is fed back as the
next input, mirroring the paper's K-STEP-AHEAD recursion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np
from scipy import optimize

from repro.errors import ConfigurationError, ConvergenceError, ForecastError
from repro.forecast.base import Forecaster
from repro.forecast.lag import lag_matrix
from repro.rng import SeedLike, as_generator, spawn

__all__ = ["NARNET"]


@dataclass
class NARNET(Forecaster):
    """Nonlinear AR neural network forecaster.

    Parameters
    ----------
    ni:
        Number of input lags.
    nh:
        Hidden-layer width (paper: 20).
    l2:
        L2 weight penalty; small but non-zero keeps the net well-conditioned
        on short windows.
    restarts:
        Independent seeded initializations; best final loss wins.
    maxiter:
        L-BFGS iteration budget per restart.
    seed:
        Seed for reproducible initializations.
    validation_fraction:
        When > 0, the most recent fraction of training rows is held out;
        L-BFGS still minimizes the training loss, but the parameters kept
        are those with the best *validation* MSE seen along the
        optimization path (early stopping), and restarts are compared by
        validation rather than training loss.  Guards against the small-
        window overfitting a per-VM monitor would otherwise suffer.
    """

    ni: int = 8
    nh: int = 20
    l2: float = 1e-4
    restarts: int = 3
    maxiter: int = 300
    seed: SeedLike = 0
    validation_fraction: float = 0.0

    supports_warm_start = True
    supports_intervals = True

    # fitted state
    w1_: np.ndarray = field(default=None, init=False, repr=False)  # type: ignore[assignment]
    b1_: np.ndarray = field(default=None, init=False, repr=False)  # type: ignore[assignment]
    w2_: np.ndarray = field(default=None, init=False, repr=False)  # type: ignore[assignment]
    b2_: float = field(default=0.0, init=False, repr=False)
    mu_: float = field(default=0.0, init=False, repr=False)
    sd_: float = field(default=1.0, init=False, repr=False)
    y_: np.ndarray = field(default=None, init=False, repr=False)  # type: ignore[assignment]
    train_loss_: float = field(default=np.inf, init=False, repr=False)
    val_loss_: float = field(default=np.inf, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.ni < 1:
            raise ConfigurationError(f"ni must be >= 1, got {self.ni}")
        if self.nh < 1:
            raise ConfigurationError(f"nh must be >= 1, got {self.nh}")
        if self.l2 < 0:
            raise ConfigurationError(f"l2 must be non-negative, got {self.l2}")
        if self.restarts < 1:
            raise ConfigurationError(f"restarts must be >= 1, got {self.restarts}")
        if not (0.0 <= self.validation_fraction < 0.9):
            raise ConfigurationError(
                f"validation_fraction must be in [0, 0.9), got {self.validation_fraction}"
            )

    # ------------------------------------------------------------------ #
    # parameter packing
    # ------------------------------------------------------------------ #
    def _n_params(self) -> int:
        return self.nh * self.ni + self.nh + self.nh + 1

    def _unpack(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        ni, nh = self.ni, self.nh
        i = 0
        w1 = x[i : i + nh * ni].reshape(nh, ni)
        i += nh * ni
        b1 = x[i : i + nh]
        i += nh
        w2 = x[i : i + nh]
        i += nh
        b2 = float(x[i])
        return w1, b1, w2, b2

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def start_hint(self) -> Optional[np.ndarray]:
        """Packed ``(W1, b1, w2, b2)`` of the current fit.

        The hint is on the *z-scored* scale of its own training window; a
        warm restart re-scales with the new window's moments, which is fine
        — the previous weights remain a far better basin than a random
        draw for slowly drifting monitor series.
        """
        if not self._fitted or self.w1_ is None:
            return None
        return np.concatenate(
            [self.w1_.ravel(), self.b1_, self.w2_, [self.b2_]]
        )

    def fit(self, y: np.ndarray, start: Optional[np.ndarray] = None) -> "NARNET":
        """Train by restarted L-BFGS.  When *start* carries a previous
        fit's packed weights (see :meth:`start_hint`), it replaces the
        first restart's random initialization; the remaining seeded
        restarts still run, so a stale hint can never make the fit worse
        than ``restarts - 1`` cold starts."""
        arr = self._check_series(y, self.ni + max(self.nh // 2, 4))
        self.mu_ = float(arr.mean())
        self.sd_ = float(arr.std())
        if self.sd_ < 1e-12:
            # constant series: net that always outputs the constant
            self.sd_ = 1.0
            self.w1_ = np.zeros((self.nh, self.ni))
            self.b1_ = np.zeros(self.nh)
            self.w2_ = np.zeros(self.nh)
            self.b2_ = 0.0
            self.y_ = arr.copy()
            self.train_loss_ = 0.0
            self._fitted = True
            return self
        z = (arr - self.mu_) / self.sd_
        X_all, t_all = lag_matrix(z, self.ni)
        n_val = int(self.validation_fraction * X_all.shape[0])
        if n_val > 0 and X_all.shape[0] - n_val < max(4, self.ni):
            raise ConvergenceError(
                "validation split leaves too few training rows; lower "
                "validation_fraction or provide more history"
            )
        if n_val > 0:
            X, t = X_all[:-n_val], t_all[:-n_val]
            Xv, tv = X_all[-n_val:], t_all[-n_val:]
        else:
            X, t = X_all, t_all
            Xv = tv = None
        m = X.shape[0]

        def val_mse(x: np.ndarray) -> float:
            w1, b1, w2, b2 = self._unpack(x)
            h = np.tanh(Xv @ w1.T + b1)
            r = h @ w2 + b2 - tv
            return float(r @ r) / Xv.shape[0]

        def loss_grad(x: np.ndarray) -> Tuple[float, np.ndarray]:
            w1, b1, w2, b2 = self._unpack(x)
            z1 = X @ w1.T + b1  # (m, nh)
            h = np.tanh(z1)
            yhat = h @ w2 + b2
            r = yhat - t
            loss = 0.5 * float(r @ r) / m
            # L2 on weights only (not biases), standard weight decay
            loss += 0.5 * self.l2 * (float((w1 * w1).sum()) + float(w2 @ w2))
            dy = r / m  # (m,)
            g_b2 = float(dy.sum())
            g_w2 = h.T @ dy + self.l2 * w2
            dh = np.outer(dy, w2) * (1.0 - h * h)  # (m, nh)
            g_w1 = dh.T @ X + self.l2 * w1
            g_b1 = dh.sum(axis=0)
            grad = np.concatenate([g_w1.ravel(), g_b1, g_w2, [g_b2]])
            return loss, grad

        hint: Optional[np.ndarray] = None
        if start is not None:
            cand = np.asarray(start, dtype=np.float64).ravel()
            if cand.shape == (self._n_params(),) and np.all(np.isfinite(cand)):
                hint = cand
        best_loss = np.inf
        best_x: Optional[np.ndarray] = None
        best_val = np.inf
        for ridx, rng in enumerate(spawn(self.seed, self.restarts)):
            if ridx == 0 and hint is not None:
                x0 = hint.copy()
            else:
                x0 = np.empty(self._n_params())
                scale1 = 1.0 / np.sqrt(self.ni)
                scale2 = 1.0 / np.sqrt(self.nh)
                i = 0
                x0[i : i + self.nh * self.ni] = rng.normal(0, scale1, self.nh * self.ni)
                i += self.nh * self.ni
                x0[i : i + self.nh] = rng.normal(0, 0.1, self.nh)
                i += self.nh
                x0[i : i + self.nh] = rng.normal(0, scale2, self.nh)
                x0[-1] = 0.0
            if Xv is None:
                res = optimize.minimize(
                    loss_grad,
                    x0,
                    jac=True,
                    method="L-BFGS-B",
                    options={"maxiter": self.maxiter},
                )
                if np.isfinite(res.fun) and res.fun < best_loss:
                    best_loss = float(res.fun)
                    best_x = res.x
            else:
                # early stopping: keep the iterate with the best held-out
                # MSE seen anywhere along this restart's optimization path
                path_best_val = [np.inf]
                path_best_x = [x0.copy()]

                def track(xk):
                    v = val_mse(xk)
                    if v < path_best_val[0]:
                        path_best_val[0] = v
                        path_best_x[0] = xk.copy()

                track(x0)
                res = optimize.minimize(
                    loss_grad,
                    x0,
                    jac=True,
                    method="L-BFGS-B",
                    callback=track,
                    options={"maxiter": self.maxiter},
                )
                track(res.x)
                if path_best_val[0] < best_val:
                    best_val = path_best_val[0]
                    best_x = path_best_x[0]
                    best_loss = float(loss_grad(path_best_x[0])[0])
        if best_x is None:
            raise ConvergenceError("every NARNET restart diverged")
        self.val_loss_ = float(best_val)
        self.w1_, self.b1_, self.w2_, self.b2_ = self._unpack(best_x)
        self.w1_ = self.w1_.copy()
        self.b1_ = self.b1_.copy()
        self.w2_ = self.w2_.copy()
        self.train_loss_ = best_loss
        self.y_ = arr.copy()
        self._fitted = True
        return self

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def _predict_scaled(self, lags: np.ndarray) -> float:
        """One step from z-scored lag vector (most recent first)."""
        h = np.tanh(self.w1_ @ lags + self.b1_)
        return float(self.w2_ @ h + self.b2_)

    def forecast(self, h: int = 1) -> np.ndarray:
        self._require_fitted()
        if h < 1:
            raise ForecastError(f"forecast horizon must be >= 1, got {h}")
        z = (self.y_ - self.mu_) / self.sd_
        lags = list(z[-self.ni :][::-1])  # most recent first
        out = np.empty(h)
        for k in range(h):
            pred = self._predict_scaled(np.asarray(lags[: self.ni]))
            out[k] = pred
            lags.insert(0, pred)  # closed loop
        return out * self.sd_ + self.mu_

    def forecast_interval(
        self, h: int = 1, alpha: float = 0.05, *, paths: int = 64
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Residual-bootstrap band around the closed-loop forecast.

        *paths* closed-loop trajectories are simulated on the z-scored
        scale, each step perturbed by a residual resampled from the fit's
        own open-loop one-step errors (see :meth:`fitted_values`); the
        band is the per-horizon ``alpha/2``/``1 - alpha/2`` quantile
        envelope, widened where needed to bracket the point forecast.
        The bootstrap stream is derived deterministically from the model
        seed, so repeated calls agree exactly.
        """
        self._require_fitted()
        if h < 1:
            raise ForecastError(f"forecast horizon must be >= 1, got {h}")
        if not (0.0 < alpha < 1.0):
            raise ForecastError(f"alpha must be in (0, 1), got {alpha}")
        if paths < 2:
            raise ForecastError(f"need >= 2 bootstrap paths, got {paths}")
        mean = self.forecast(h)
        z = (self.y_ - self.mu_) / self.sd_
        if z.shape[0] <= self.ni + 1:
            raise ForecastError(
                "history too short for residual-bootstrap intervals"
            )
        fitted_z = (self.fitted_values() - self.mu_) / self.sd_
        res = z[self.ni :] - fitted_z
        # a shared-Generator seed must not be consumed here (that would
        # perturb the fit stream); bootstrap draws come from a private
        # stream derived from the integer seed when there is one
        base = int(self.seed) if isinstance(self.seed, (int, np.integer)) else 0
        rng = np.random.default_rng((base, 0xB007))
        lags = np.tile(z[-self.ni :][::-1], (paths, 1))  # most recent first
        sims = np.empty((paths, h))
        for k in range(h):
            core = np.tanh(lags @ self.w1_.T + self.b1_) @ self.w2_ + self.b2_
            step = core + rng.choice(res, size=paths)
            sims[:, k] = step
            lags = np.concatenate((step[:, None], lags[:, :-1]), axis=1)
        sims = sims * self.sd_ + self.mu_
        lower = np.minimum(np.quantile(sims, alpha / 2.0, axis=0), mean)
        upper = np.maximum(np.quantile(sims, 1.0 - alpha / 2.0, axis=0), mean)
        return mean, lower, upper

    def fitted_values(self) -> np.ndarray:
        """Open-loop one-step predictions over the training span.

        Aligned with ``y[ni:]`` — entry ``k`` predicts ``y_[ni + k]`` from
        true history.
        """
        self._require_fitted()
        z = (self.y_ - self.mu_) / self.sd_
        X, _ = lag_matrix(z, self.ni)
        hidden = np.tanh(X @ self.w1_.T + self.b1_)
        return (hidden @ self.w2_ + self.b2_) * self.sd_ + self.mu_

    def append(self, value: float) -> None:
        self._require_fitted()
        if not np.isfinite(value):
            raise ForecastError(f"appended value must be finite, got {value}")
        self.y_ = np.append(self.y_, float(value))

    def __repr__(self) -> str:
        tag = "fitted" if self._fitted else "unfitted"
        return f"NARNET(ni={self.ni}, nh={self.nh})[{tag}]"
