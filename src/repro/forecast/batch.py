"""Batched fleet forecasting kernels.

A paper-scale fleet runs thousands of per-VM/per-host forecasters, and the
monitor tick asks every one of them for the same thing: an h-step
conditional mean.  Calling :meth:`~repro.forecast.base.Forecaster.forecast`
one model at a time spends most of the tick in Python call overhead — the
arithmetic per ARIMA step is a handful of multiply-adds.

:func:`batch_forecast` regroups a fleet of fitted forecasters by model
class and ARIMA order ``(p, d, q)``, stacks each group's O(p + q + d)
forecasting state into arrays, and runs the paper's Sec. IV-B recursion
(one-step MMSE prediction, k-step values fed back as history, Eq. (12)
integration) *once per group* with element-wise array ops.

Bit-identity contract: numpy element-wise arithmetic applies the same IEEE
operation per element that the scalar recursion applies per model, in the
same order — the stacked kernel accumulates ``c``, then ``φ_i · w_{t-i}``
for ``i = 1..p``, then ``θ_j · e_{t-j}`` for ``j = 1..q``, exactly like
:meth:`ARIMA.forecast`, and integrates with one ``cumsum`` per
differencing level exactly like :func:`~repro.forecast.lag.undifference`.
Models outside the batchable set (non-ARIMA classes, subclasses, unfitted
instances) fall back to their own scalar ``forecast`` — so the result is
byte-identical to ``[m.forecast(h) for m in models]`` for *any* mixed
fleet.  The property suite asserts this bitwise.

Confidence-aware selectors (``DynamicModelSelector(confidence=True)``)
never enter these kernels: :func:`~repro.forecast.selection.batch_predict_one`
routes them through the scalar ``predict_one`` so interval lookups and
conservative widening stay per-selector decisions, while the rest of the
fleet keeps the stacked path — mixed fleets remain member-by-member
consistent with the scalar loop.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ForecastError
from repro.forecast.arima import ARIMA
from repro.forecast.naive import NaiveLast

__all__ = ["batch_forecast", "batch_predict_one", "group_arima", "group_fleet"]

ArimaOrder = Tuple[int, int, int]


def _batchable(model: object) -> bool:
    """Exactly-ARIMA fitted instances; subclasses may override forecast."""
    return type(model) is ARIMA and getattr(model, "_fitted", False)


def group_fleet(
    models: Sequence[object],
) -> Tuple[Dict[ArimaOrder, List[int]], List[int], List[int]]:
    """Partition *models* into batchable groups and a scalar rest.

    Returns ``(groups, naive, scalar)``: *groups* maps ``(p, d, q)`` to the
    indices of fitted plain-ARIMA members sharing that order (insertion
    order preserved), *naive* lists fitted plain-:class:`NaiveLast`
    members (their forecast is a gather of each ``y_[-1]``), and *scalar*
    everything else.  Exact-type gates throughout — subclasses may
    override ``forecast`` and must go scalar.
    """
    groups: Dict[ArimaOrder, List[int]] = {}
    naive: List[int] = []
    scalar: List[int] = []
    for idx, m in enumerate(models):
        if _batchable(m):
            groups.setdefault((m.p, m.d, m.q), []).append(idx)
        elif type(m) is NaiveLast and getattr(m, "_fitted", False):
            naive.append(idx)
        else:
            scalar.append(idx)
    return groups, naive, scalar


def group_arima(
    models: Sequence[object],
) -> Tuple[Dict[ArimaOrder, List[int]], List[int]]:
    """Partition *models* into stackable ARIMA groups and a scalar rest.

    Returns ``(groups, scalar)`` where *groups* maps ``(p, d, q)`` to the
    indices of fitted plain-ARIMA members sharing that order (insertion
    order preserved) and *scalar* lists every other index.
    """
    groups, naive, scalar = group_fleet(models)
    return groups, sorted(naive + scalar)


def _forecast_group(models: Sequence[ARIMA], p: int, d: int, q: int, h: int) -> np.ndarray:
    """Stacked Sec. IV-B recursion for one ``(p, d, q)`` group.

    Returns an ``(len(models), h)`` level-scale forecast matrix whose row
    ``i`` is bitwise ``models[i].forecast(h)``.
    """
    n = len(models)
    const = np.asarray([m.const_ for m in models], dtype=np.float64)
    phi = (
        np.asarray([m.phi_ for m in models], dtype=np.float64)
        if p
        else np.empty((n, 0))
    )
    theta = (
        np.asarray([m.theta_ for m in models], dtype=np.float64)
        if q
        else np.empty((n, 0))
    )
    # histories as lists of (n,) columns, most recent last — appending a
    # column mirrors the scalar path appending one value per model
    w_cols: List[np.ndarray] = [
        np.asarray([m._w_tail[k] for m in models], dtype=np.float64)
        for k in range(p)
    ]
    e_cols: List[np.ndarray] = [
        np.asarray([m._e_tail[k] for m in models], dtype=np.float64)
        for k in range(q)
    ]
    out = np.empty((n, h))
    for k in range(h):
        val = const.copy()
        for i in range(1, p + 1):
            val += phi[:, i - 1] * w_cols[-i]
        for j in range(1, q + 1):
            val += theta[:, j - 1] * e_cols[-j]
        out[:, k] = val
        if p:
            w_cols.append(val)  # K-STEP-AHEAD: forecast becomes history
        if q:
            e_cols.append(np.zeros(n))  # future innovations have zero mean
    if d == 0:
        return out
    # Eq. (12) integration, innermost difference first — one cumsum per
    # level is the row-wise image of undifference()'s scalar loop
    heads = np.asarray([m._heads for m in models], dtype=np.float64)
    for level in range(d - 1, -1, -1):
        out = heads[:, level][:, None] + np.cumsum(out, axis=1)
    return out


def batch_forecast(models: Sequence[object], h: int = 1) -> List[np.ndarray]:
    """h-step forecasts for a fleet; bitwise ``[m.forecast(h) for m in models]``.

    Fitted plain-ARIMA members are grouped by order and forecast with one
    stacked recursion per group; everything else goes through its own
    scalar ``forecast``.  Results come back in input order.
    """
    if h < 1:
        raise ForecastError(f"forecast horizon must be >= 1, got {h}")
    models = list(models)
    out: List[np.ndarray] = [None] * len(models)  # type: ignore[list-item]
    groups, naive, scalar = group_fleet(models)
    for (p, d, q), idxs in groups.items():
        grp = _forecast_group([models[i] for i in idxs], p, d, q, h)
        for row, i in enumerate(idxs):
            out[i] = grp[row]
    for i in naive:
        # bitwise NaiveLast.forecast: np.full(h, float(y_[-1]))
        out[i] = np.full(h, float(models[i].y_[-1]))
    for i in scalar:
        out[i] = models[i].forecast(h)
    return out


def batch_predict_one(models: Sequence[object]) -> List[float]:
    """One-step forecasts; bitwise ``[m.predict_one() for m in models]``."""
    models = list(models)
    out: List[float] = [0.0] * len(models)
    groups, naive, scalar = group_fleet(models)
    for (p, d, q), idxs in groups.items():
        grp = _forecast_group([models[i] for i in idxs], p, d, q, 1)
        col = grp[:, 0]
        for row, i in enumerate(idxs):
            out[i] = float(col[row])
    for i in naive:
        # predict_one == float(forecast(1)[0]) == float(y_[-1]) exactly:
        # np.full stores the float64 unchanged and indexing reads it back
        out[i] = float(models[i].y_[-1])
    for i in scalar:
        out[i] = models[i].predict_one()
    return out
