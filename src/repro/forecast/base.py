"""Common forecaster interface.

Every model in :mod:`repro.forecast` implements the same three-method
contract so the dynamic selector (and the per-VM monitors) can treat them
uniformly:

* :meth:`Forecaster.fit` — estimate parameters from a history;
* :meth:`Forecaster.forecast` — h-step-ahead conditional mean from the end
  of the observed data (the paper's ``P_t Y_{t+h}``);
* :meth:`Forecaster.append` — feed one newly observed value *without*
  refitting (parameters stay, state advances), which is what a shim does
  between periodic refits.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ForecastError

__all__ = ["PredictionInterval", "Forecaster", "warm_fit"]


@dataclass(frozen=True)
class PredictionInterval:
    """A one-step forecast with its ``1 - alpha`` uncertainty band.

    ``width`` is the confidence signal the robust-arbitration layer keys
    on (see docs/robust-forecasting.md): a spiking width means the model
    no longer trusts its own point forecast, whatever its trailing MSE
    says about the recent past.
    """

    mean: float
    lower: float
    upper: float
    alpha: float

    def __post_init__(self) -> None:
        if not (self.lower <= self.mean <= self.upper):
            raise ForecastError(
                f"interval must bracket its mean: "
                f"[{self.lower}, {self.upper}] vs {self.mean}"
            )
        if not (0.0 < self.alpha < 1.0):
            raise ForecastError(f"alpha must be in (0, 1), got {self.alpha}")

    @property
    def width(self) -> float:
        return self.upper - self.lower

    @property
    def half_width(self) -> float:
        return 0.5 * (self.upper - self.lower)


def warm_fit(
    model: "Forecaster",
    window: np.ndarray,
    previous: Optional["Forecaster"],
) -> "Forecaster":
    """Fit *model* on *window*, warm-started from *previous* when possible.

    The hint is only consulted when the previous model is the same class
    and advertises warm-start support; a ``None`` or shape-mismatched hint
    degrades to the normal cold fit inside ``fit`` itself.  Returns
    *model*.
    """
    hint = None
    if (
        previous is not None
        and type(previous) is type(model)
        and getattr(previous, "supports_warm_start", False)
    ):
        hint = previous.start_hint()
    if hint is not None:
        model.fit(window, start=hint)
    else:
        model.fit(window)
    return model


class Forecaster(ABC):
    """Abstract base for one-dimensional time-series forecasters."""

    _fitted: bool = False
    supports_warm_start: bool = False
    """Whether :meth:`fit` accepts ``start=`` (a prior fit's packed
    parameters as the optimizer's initial guess) and :meth:`start_hint`
    produces one.  Warm starts change wall-clock, not the model class —
    the optimizer may land in a (usually better) nearby optimum."""

    supports_intervals: bool = False
    """Whether :meth:`forecast_interval` produces a genuine uncertainty
    band (ARIMA: Gaussian ψ-weight propagation of the CSS residual
    variance; NARNET: residual bootstrap; naive models: trailing-error
    quantiles).  ``False`` means the method raises — the confidence layer
    degrades to the point forecast for such members."""

    @abstractmethod
    def fit(self, y: np.ndarray) -> "Forecaster":
        """Estimate parameters from series *y*; returns ``self``."""

    def start_hint(self) -> Optional[np.ndarray]:
        """Packed parameters of the current fit, usable as a warm ``start=``
        for the next ``fit`` of a same-shaped model; ``None`` when unfitted
        or unsupported."""
        return None

    @abstractmethod
    def forecast(self, h: int = 1) -> np.ndarray:
        """Conditional-mean forecasts for the next *h* steps (shape ``(h,)``)."""

    @abstractmethod
    def append(self, value: float) -> None:
        """Advance state by one observed value without re-estimating."""

    def forecast_interval(
        self, h: int = 1, alpha: float = 0.05
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(mean, lower, upper)`` h-step forecasts with a ``1 - alpha`` band.

        Only meaningful when :attr:`supports_intervals` is true; the base
        implementation raises so callers never mistake a missing band for
        a zero-width one.
        """
        raise ForecastError(
            f"{type(self).__name__} does not produce prediction intervals"
        )

    # ------------------------------------------------------------------ #
    def predict_one(self) -> float:
        """Convenience scalar one-step-ahead forecast."""
        return float(self.forecast(1)[0])

    def predict_one_interval(self, alpha: float = 0.05) -> PredictionInterval:
        """One-step forecast wrapped in a :class:`PredictionInterval`."""
        mean, lower, upper = self.forecast_interval(1, alpha)
        return PredictionInterval(
            mean=float(mean[0]),
            lower=float(lower[0]),
            upper=float(upper[0]),
            alpha=alpha,
        )

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise ForecastError(f"{type(self).__name__} is not fitted")

    @staticmethod
    def _check_series(y: np.ndarray, min_len: int) -> np.ndarray:
        arr = np.asarray(y, dtype=np.float64).ravel()
        if arr.shape[0] < min_len:
            raise ForecastError(
                f"series too short: need >= {min_len} points, got {arr.shape[0]}"
            )
        if not np.isfinite(arr).all():
            raise ForecastError("series contains NaN or inf")
        return arr
