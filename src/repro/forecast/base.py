"""Common forecaster interface.

Every model in :mod:`repro.forecast` implements the same three-method
contract so the dynamic selector (and the per-VM monitors) can treat them
uniformly:

* :meth:`Forecaster.fit` — estimate parameters from a history;
* :meth:`Forecaster.forecast` — h-step-ahead conditional mean from the end
  of the observed data (the paper's ``P_t Y_{t+h}``);
* :meth:`Forecaster.append` — feed one newly observed value *without*
  refitting (parameters stay, state advances), which is what a shim does
  between periodic refits.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.errors import ForecastError

__all__ = ["Forecaster"]


class Forecaster(ABC):
    """Abstract base for one-dimensional time-series forecasters."""

    _fitted: bool = False

    @abstractmethod
    def fit(self, y: np.ndarray) -> "Forecaster":
        """Estimate parameters from series *y*; returns ``self``."""

    @abstractmethod
    def forecast(self, h: int = 1) -> np.ndarray:
        """Conditional-mean forecasts for the next *h* steps (shape ``(h,)``)."""

    @abstractmethod
    def append(self, value: float) -> None:
        """Advance state by one observed value without re-estimating."""

    # ------------------------------------------------------------------ #
    def predict_one(self) -> float:
        """Convenience scalar one-step-ahead forecast."""
        return float(self.forecast(1)[0])

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise ForecastError(f"{type(self).__name__} is not fitted")

    @staticmethod
    def _check_series(y: np.ndarray, min_len: int) -> np.ndarray:
        arr = np.asarray(y, dtype=np.float64).ravel()
        if arr.shape[0] < min_len:
            raise ForecastError(
                f"series too short: need >= {min_len} points, got {arr.shape[0]}"
            )
        if not np.isfinite(arr).all():
            raise ForecastError("series contains NaN or inf")
        return arr
