"""Naive reference forecasters.

Any prediction pipeline needs sanity floors: a sophisticated model that
cannot beat "repeat the last value" is mis-configured.  These also serve
as cheap members of the dynamic-selection pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError, ForecastError
from repro.forecast.base import Forecaster

__all__ = ["NaiveLast", "SeasonalNaive"]


def _quantile_band(
    mean: np.ndarray, errors: np.ndarray, alpha: float, *, scale_by_horizon: bool
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Empirical trailing-error band around a naive point forecast.

    The band is the ``alpha/2``/``1 - alpha/2`` quantiles of the model's
    own historical one-step errors, re-centered on the forecast; with
    *scale_by_horizon* the half-widths grow like ``sqrt(h)`` (the random
    walk's variance accumulation).  Quantiles are clipped to include the
    mean so the band always brackets its forecast.
    """
    if not (0.0 < alpha < 1.0):
        raise ForecastError(f"alpha must be in (0, 1), got {alpha}")
    if errors.shape[0] < 2:
        raise ForecastError(
            "need >= 3 observations to form trailing-error quantiles"
        )
    lo_q = float(np.quantile(errors, alpha / 2.0))
    hi_q = float(np.quantile(errors, 1.0 - alpha / 2.0))
    lo_q = min(lo_q, 0.0)
    hi_q = max(hi_q, 0.0)
    h = mean.shape[0]
    if scale_by_horizon:
        growth = np.sqrt(np.arange(1, h + 1))
    else:
        growth = np.ones(h)
    return mean, mean + lo_q * growth, mean + hi_q * growth


@dataclass
class NaiveLast(Forecaster):
    """Random-walk forecast: every horizon repeats the last observation."""

    supports_intervals = True

    y_: np.ndarray = field(default=None, init=False, repr=False)  # type: ignore[assignment]

    def fit(self, y: np.ndarray) -> "NaiveLast":
        self.y_ = self._check_series(y, 1)
        self._fitted = True
        return self

    def forecast(self, h: int = 1) -> np.ndarray:
        self._require_fitted()
        if h < 1:
            raise ForecastError(f"forecast horizon must be >= 1, got {h}")
        return np.full(h, float(self.y_[-1]))

    def forecast_interval(
        self, h: int = 1, alpha: float = 0.05
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Band from the quantiles of the walk's own one-step errors.

        A random walk's one-step errors are exactly ``diff(y)``; horizon-h
        half-widths scale with ``sqrt(h)``.
        """
        mean = self.forecast(h)
        return _quantile_band(
            mean, np.diff(self.y_), alpha, scale_by_horizon=True
        )

    def append(self, value: float) -> None:
        self._require_fitted()
        if not np.isfinite(value):
            raise ForecastError(f"appended value must be finite, got {value}")
        self.y_ = np.concatenate((self.y_, (float(value),)))


@dataclass
class SeasonalNaive(Forecaster):
    """Forecast = observation one season ago (strong on diurnal traces)."""

    period: int = 96

    supports_intervals = True

    y_: np.ndarray = field(default=None, init=False, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ConfigurationError(f"period must be >= 1, got {self.period}")

    def fit(self, y: np.ndarray) -> "SeasonalNaive":
        self.y_ = self._check_series(y, self.period)
        self._fitted = True
        return self

    def forecast(self, h: int = 1) -> np.ndarray:
        self._require_fitted()
        if h < 1:
            raise ForecastError(f"forecast horizon must be >= 1, got {h}")
        n = self.y_.shape[0]
        idx = n - self.period + np.arange(h) % self.period
        # horizons past one season wrap within the final season
        return self.y_[idx].astype(np.float64)

    def forecast_interval(
        self, h: int = 1, alpha: float = 0.05
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Band from the quantiles of the seasonal one-step errors.

        The model's historical errors are ``y[t] - y[t - period]``; a
        season-ago repeat does not accumulate variance with horizon, so
        the band width is flat in ``h``.
        """
        mean = self.forecast(h)
        if self.y_.shape[0] <= self.period + 1:
            raise ForecastError(
                "need more than one season of history for seasonal "
                "trailing-error quantiles"
            )
        errors = self.y_[self.period :] - self.y_[: -self.period]
        return _quantile_band(mean, errors, alpha, scale_by_horizon=False)

    def append(self, value: float) -> None:
        self._require_fitted()
        if not np.isfinite(value):
            raise ForecastError(f"appended value must be finite, got {value}")
        self.y_ = np.append(self.y_, float(value))
