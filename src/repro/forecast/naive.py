"""Naive reference forecasters.

Any prediction pipeline needs sanity floors: a sophisticated model that
cannot beat "repeat the last value" is mis-configured.  These also serve
as cheap members of the dynamic-selection pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, ForecastError
from repro.forecast.base import Forecaster

__all__ = ["NaiveLast", "SeasonalNaive"]


@dataclass
class NaiveLast(Forecaster):
    """Random-walk forecast: every horizon repeats the last observation."""

    y_: np.ndarray = field(default=None, init=False, repr=False)  # type: ignore[assignment]

    def fit(self, y: np.ndarray) -> "NaiveLast":
        self.y_ = self._check_series(y, 1)
        self._fitted = True
        return self

    def forecast(self, h: int = 1) -> np.ndarray:
        self._require_fitted()
        if h < 1:
            raise ForecastError(f"forecast horizon must be >= 1, got {h}")
        return np.full(h, float(self.y_[-1]))

    def append(self, value: float) -> None:
        self._require_fitted()
        if not np.isfinite(value):
            raise ForecastError(f"appended value must be finite, got {value}")
        self.y_ = np.concatenate((self.y_, (float(value),)))


@dataclass
class SeasonalNaive(Forecaster):
    """Forecast = observation one season ago (strong on diurnal traces)."""

    period: int = 96

    y_: np.ndarray = field(default=None, init=False, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ConfigurationError(f"period must be >= 1, got {self.period}")

    def fit(self, y: np.ndarray) -> "SeasonalNaive":
        self.y_ = self._check_series(y, self.period)
        self._fitted = True
        return self

    def forecast(self, h: int = 1) -> np.ndarray:
        self._require_fitted()
        if h < 1:
            raise ForecastError(f"forecast horizon must be >= 1, got {h}")
        n = self.y_.shape[0]
        idx = n - self.period + np.arange(h) % self.period
        # horizons past one season wrap within the final season
        return self.y_[idx].astype(np.float64)

    def append(self, value: float) -> None:
        self._require_fitted()
        if not np.isfinite(value):
            raise ForecastError(f"appended value must be finite, got {value}")
        self.y_ = np.append(self.y_, float(value))
