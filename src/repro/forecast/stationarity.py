"""Stationarity heuristics for choosing the differencing order ``d``.

Box–Jenkins identification first differences a non-stationary series
"to remove periodicity and trends".  Without statsmodels we implement two
standard, dependency-free checks and combine them:

* **ACF decay**: a unit-root series has an ACF that stays near 1 for many
  lags; a stationary one decays quickly.
* **Variance rule**: over-differencing *increases* variance, so we pick the
  smallest ``d`` whose differenced variance is within a tolerance of the
  minimum across candidate orders (the classic "difference until the
  variance stops decreasing" rule).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ForecastError
from repro.forecast.acf import acf
from repro.forecast.lag import difference

__all__ = ["is_stationary", "choose_difference_order"]


def is_stationary(
    y: np.ndarray,
    *,
    acf_lags: int = 10,
    acf_threshold: float = 0.45,
) -> bool:
    """Heuristic stationarity check via mean high-lag autocorrelation.

    Returns True when the mean |ACF| over lags ``acf_lags//2 .. acf_lags``
    falls below *acf_threshold* — slowly decaying ACFs flag a trend/unit
    root.
    """
    arr = np.asarray(y, dtype=np.float64).ravel()
    if arr.shape[0] < 3 * acf_lags:
        raise ForecastError(
            f"need >= {3 * acf_lags} points for the stationarity check, got {arr.shape[0]}"
        )
    if np.std(arr) < 1e-12:
        return True  # a constant is trivially stationary
    r = acf(arr, acf_lags)
    tail = np.abs(r[acf_lags // 2 :])
    return bool(tail.mean() < acf_threshold)


def choose_difference_order(
    y: np.ndarray,
    max_d: int = 2,
    *,
    variance_tolerance: float = 1.10,
) -> int:
    """Smallest ``d`` in ``0..max_d`` making the series look stationary.

    Primary signal is :func:`is_stationary`; ties (nothing passes) fall back
    to the variance rule: the smallest ``d`` whose differenced-series
    variance is within *variance_tolerance* × the minimum over all orders.
    """
    arr = np.asarray(y, dtype=np.float64).ravel()
    if max_d < 0:
        raise ForecastError(f"max_d must be non-negative, got {max_d}")
    variances = []
    for d in range(max_d + 1):
        dy = difference(arr, d)
        variances.append(float(np.var(dy)))
        try:
            if is_stationary(dy):
                return d
        except ForecastError:
            # series became too short to test at this order; stop probing
            break
    v = np.asarray(variances)
    best = float(v.min())
    for d, var in enumerate(v):
        if var <= variance_tolerance * best:
            return d
    return int(v.argmin())
