"""Lag and difference operators (Sec. IV-B).

The paper defines the lag operator ``L^j Y_t = Y_{t-j}`` and the lag-1
difference ``∇Y_t = Y_t - Y_{t-1}`` with powers ``∇^j = ∇(∇^{j-1})``.
ARIMA works on ``∇^d Y``; forecasts are integrated back with Eq. (12)
``P_t Y_{t+h} = (∇^{-d}) P_t ∇^d Y_{t+h}``, implemented here as
:func:`undifference`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ForecastError

__all__ = ["difference", "undifference", "difference_heads", "lag_matrix"]


def difference(y: np.ndarray, d: int) -> np.ndarray:
    """Apply ``∇^d`` to *y*; result has length ``len(y) - d``."""
    arr = np.asarray(y, dtype=np.float64).ravel()
    if d < 0:
        raise ForecastError(f"difference order must be non-negative, got {d}")
    if arr.shape[0] <= d:
        raise ForecastError(f"series of length {arr.shape[0]} cannot be differenced {d}x")
    return np.diff(arr, n=d) if d > 0 else arr.copy()


def difference_heads(y: np.ndarray, d: int) -> List[float]:
    """Last value of each intermediate differencing level.

    ``heads[j]`` is the final element of ``∇^j y`` for ``j = 0..d-1`` — the
    integration constants :func:`undifference` needs to rebuild level
    forecasts from differenced ones.
    """
    arr = np.asarray(y, dtype=np.float64).ravel()
    if d < 0:
        raise ForecastError(f"difference order must be non-negative, got {d}")
    if arr.shape[0] <= d:
        raise ForecastError(f"series of length {arr.shape[0]} cannot be differenced {d}x")
    heads: List[float] = []
    cur = arr
    for _ in range(d):
        heads.append(float(cur[-1]))
        cur = np.diff(cur)
    return heads


def undifference(forecasts: np.ndarray, heads: List[float]) -> np.ndarray:
    """Integrate ``∇^d``-scale forecasts back to the original level.

    Parameters
    ----------
    forecasts:
        h-step forecasts of the *d*-times-differenced series.
    heads:
        Output of :func:`difference_heads` on the observed series — the
        values at the integration boundary, outermost level first.

    Implements the recursion ``Y_{t+k} = Y_{t+k-1} + ∇Y_{t+k}`` applied
    ``d`` times (innermost difference first).
    """
    out = np.asarray(forecasts, dtype=np.float64).copy()
    for head in reversed(heads):
        out = head + np.cumsum(out)
    return out


def lag_matrix(y: np.ndarray, lags: int) -> tuple[np.ndarray, np.ndarray]:
    """Delay-embedding design matrix for autoregression.

    Returns ``(X, target)`` where row ``i`` of ``X`` is
    ``[y_{t-1}, y_{t-2}, ..., y_{t-lags}]`` for target ``y_t``
    (most recent lag first — NARNET convention here).  Built from strided
    views of a single reversed copy, no per-row Python loop.
    """
    arr = np.asarray(y, dtype=np.float64).ravel()
    if lags < 1:
        raise ForecastError(f"need >= 1 lag, got {lags}")
    n = arr.shape[0]
    if n <= lags:
        raise ForecastError(f"series of length {n} too short for {lags} lags")
    m = n - lags
    # sliding windows over y: window i is y[i : i+lags] = lags oldest-first
    win = np.lib.stride_tricks.sliding_window_view(arr, lags)[:m]
    X = win[:, ::-1]  # most recent lag first
    target = arr[lags:]
    return np.ascontiguousarray(X), target
