"""Seasonal ARIMA — ARIMA over a seasonally differenced series.

Box–Jenkins identification differences a series "to remove periodicity
and trends" (Sec. IV-B).  For strongly periodic DCN traffic the plain
lag-1 difference leaves the daily cycle in place; the standard remedy is
the seasonal difference ``∇_s Y_t = Y_t - Y_{t-s}`` (optionally combined
with regular differencing), after which a low-order ARMA explains the
remainder.

:class:`SeasonalARIMA` implements the ``SARIMA(p, d, q) x (D)_s`` subset
that matters here: ``D`` seasonal differences of period ``s`` applied
first, then a standard :class:`~repro.forecast.arima.ARIMA` (p, d, q) on
the result.  Forecasts are integrated back through both differencing
layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.errors import ConfigurationError, ForecastError
from repro.forecast.arima import ARIMA
from repro.forecast.base import Forecaster

__all__ = ["SeasonalARIMA", "seasonal_difference", "seasonal_undifference"]


def seasonal_difference(y: np.ndarray, period: int, order: int = 1) -> np.ndarray:
    """Apply ``∇_s^D``: result has length ``len(y) - D * s``."""
    arr = np.asarray(y, dtype=np.float64).ravel()
    if period < 2:
        raise ForecastError(f"seasonal period must be >= 2, got {period}")
    if order < 0:
        raise ForecastError(f"seasonal order must be non-negative, got {order}")
    for _ in range(order):
        if arr.shape[0] <= period:
            raise ForecastError(
                f"series too short for seasonal differencing at period {period}"
            )
        arr = arr[period:] - arr[:-period]
    return arr


def seasonal_undifference(
    forecasts: np.ndarray, tails: List[np.ndarray], period: int
) -> np.ndarray:
    """Invert ``∇_s^D`` for h-step forecasts.

    ``tails[j]`` holds the final ``period`` values of the series at
    seasonal-differencing level ``j`` (outermost first), produced during
    :meth:`SeasonalARIMA.fit`.  Horizons beyond one period chain onto the
    already-integrated forecasts, exactly like the regular integration.
    """
    out = np.asarray(forecasts, dtype=np.float64).copy()
    for tail in reversed(tails):
        if tail.shape[0] != period:
            raise ForecastError(
                f"tail must hold {period} values, got {tail.shape[0]}"
            )
        merged = np.concatenate([tail, np.empty_like(out)])
        for k in range(out.shape[0]):
            merged[period + k] = out[k] + merged[k]
        out = merged[period:]
    return out


@dataclass
class SeasonalARIMA(Forecaster):
    """ARIMA on a seasonally differenced series.

    Parameters
    ----------
    p, d, q:
        Non-seasonal orders of the inner ARIMA.
    period:
        Season length ``s`` in samples (e.g. 144 for daily cycles at
        10-minute sampling).
    seasonal_order:
        ``D`` — how many times to apply ``∇_s`` before the inner model.
    """

    p: int = 1
    d: int = 0
    q: int = 1
    period: int = 144
    seasonal_order: int = 1
    include_constant: bool = True

    _inner: ARIMA = field(default=None, init=False, repr=False)  # type: ignore[assignment]
    _tails: List[np.ndarray] = field(default_factory=list, init=False, repr=False)
    y_: np.ndarray = field(default=None, init=False, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.period < 2:
            raise ConfigurationError(f"period must be >= 2, got {self.period}")
        if self.seasonal_order < 0:
            raise ConfigurationError(
                f"seasonal_order must be non-negative, got {self.seasonal_order}"
            )

    def _min_samples(self) -> int:
        return self.seasonal_order * self.period + self.d + self.p + self.q + 10

    def fit(self, y: np.ndarray) -> "SeasonalARIMA":
        arr = self._check_series(y, self._min_samples())
        self._tails = []
        work = arr
        for _ in range(self.seasonal_order):
            self._tails.append(work[-self.period :].copy())
            work = seasonal_difference(work, self.period, 1)
        self._inner = ARIMA(
            self.p, self.d, self.q, include_constant=self.include_constant
        ).fit(work)
        self.y_ = arr.copy()
        self._fitted = True
        return self

    def forecast(self, h: int = 1) -> np.ndarray:
        self._require_fitted()
        if h < 1:
            raise ForecastError(f"forecast horizon must be >= 1, got {h}")
        inner = self._inner.forecast(h)
        if self.seasonal_order == 0:
            return inner
        return seasonal_undifference(inner, self._tails, self.period)

    def append(self, value: float) -> None:
        self._require_fitted()
        if not np.isfinite(value):
            raise ForecastError(f"appended value must be finite, got {value}")
        self.y_ = np.append(self.y_, float(value))
        # update the differencing tails and feed the inner model
        work_value = float(value)
        new_tails: List[np.ndarray] = []
        for tail in self._tails:
            diffed = work_value - float(tail[0])
            new_tails.append(np.append(tail[1:], work_value))
            work_value = diffed
        self._tails = new_tails
        self._inner.append(work_value)

    def aic(self) -> float:
        """AIC of the inner model (comparable at fixed seasonal spec)."""
        self._require_fitted()
        return self._inner.aic()

    def __repr__(self) -> str:
        tag = "fitted" if self._fitted else "unfitted"
        return (
            f"SeasonalARIMA(({self.p},{self.d},{self.q})x"
            f"(D={self.seasonal_order})_{self.period})[{tag}]"
        )
