"""Autocorrelation diagnostics used by Box–Jenkins identification.

* :func:`acf` — sample autocorrelation, FFT-based (O(n log n));
* :func:`pacf` — partial autocorrelation via Durbin–Levinson;
* :func:`ljung_box` — portmanteau whiteness statistic for residual checks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import stats

from repro.errors import ForecastError

__all__ = ["acf", "pacf", "ljung_box"]


def acf(y: np.ndarray, nlags: int) -> np.ndarray:
    """Sample ACF at lags ``0..nlags`` (biased estimator, FFT-computed)."""
    arr = np.asarray(y, dtype=np.float64).ravel()
    n = arr.shape[0]
    if nlags < 0:
        raise ForecastError(f"nlags must be non-negative, got {nlags}")
    if n <= nlags:
        raise ForecastError(f"series of length {n} too short for {nlags} lags")
    x = arr - arr.mean()
    var = np.dot(x, x)
    if var <= 0:
        raise ForecastError("constant series has no autocorrelation structure")
    # autocovariance via FFT: pad to avoid circular wrap
    nfft = int(2 ** np.ceil(np.log2(2 * n - 1)))
    f = np.fft.rfft(x, nfft)
    acov = np.fft.irfft(f * np.conjugate(f), nfft)[: nlags + 1].real
    return acov / var


def pacf(y: np.ndarray, nlags: int) -> np.ndarray:
    """Sample PACF at lags ``0..nlags`` via the Durbin–Levinson recursion."""
    r = acf(y, nlags)
    out = np.empty(nlags + 1)
    out[0] = 1.0
    if nlags == 0:
        return out
    # Durbin–Levinson: phi[k, k] is the PACF at lag k.
    phi_prev = np.zeros(nlags + 1)
    phi_cur = np.zeros(nlags + 1)
    phi_prev[1] = r[1]
    out[1] = r[1]
    v = 1.0 - r[1] ** 2
    for k in range(2, nlags + 1):
        num = r[k] - np.dot(phi_prev[1:k], r[1:k][::-1])
        if v <= 1e-15:
            # process is perfectly predictable at this order; higher PACF
            # coefficients are numerically undefined — report 0.
            out[k:] = 0.0
            return out
        a = num / v
        phi_cur[1:k] = phi_prev[1:k] - a * phi_prev[1:k][::-1]
        phi_cur[k] = a
        out[k] = a
        v *= 1.0 - a * a
        phi_prev, phi_cur = phi_cur, phi_prev
    return out


def ljung_box(residuals: np.ndarray, lags: int, fitted_params: int = 0) -> Tuple[float, float]:
    """Ljung–Box Q statistic and p-value on *residuals*.

    ``fitted_params`` reduces the χ² degrees of freedom by the number of
    estimated ARMA coefficients, per standard practice.
    """
    arr = np.asarray(residuals, dtype=np.float64).ravel()
    n = arr.shape[0]
    if lags < 1:
        raise ForecastError(f"lags must be >= 1, got {lags}")
    if lags <= fitted_params:
        raise ForecastError(
            f"lags ({lags}) must exceed fitted_params ({fitted_params})"
        )
    r = acf(arr, lags)[1:]
    k = np.arange(1, lags + 1)
    q = n * (n + 2) * np.sum(r**2 / (n - k))
    dof = lags - fitted_params
    pval = float(stats.chi2.sf(q, dof))
    return float(q), pval
