"""Dynamic model selection (Sec. IV-B, Eq. 14).

Sheriff never commits to a single model: it maintains a pool (e.g. two
ARIMA orders and two NARNET shapes), tracks each member's squared one-step
prediction errors, and at every step answers with the member whose
trailing mean squared error over the window ``T_p`` is smallest.

:class:`DynamicModelSelector` is the *live* object a per-VM monitor embeds
(predict → observe → predict ...).  :func:`rolling_one_step` is the offline
evaluation harness the Figs. 6–8 benchmarks use for single models.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConvergenceError, ForecastError
from repro.forecast.base import Forecaster, PredictionInterval, warm_fit
from repro.forecast.metrics import trailing_mse
from repro.obs.events import ModelSelected
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.pool import WorkerPool

__all__ = [
    "DynamicModelSelector",
    "batch_predict_one",
    "rolling_one_step",
    "SelectionTrace",
]

ForecasterFactory = Callable[[], Forecaster]


def _pin_stream(model: Forecaster) -> None:
    """Pin a member's shared RNG stream before grouped/pooled dispatch.

    A model seeded with a *shared* :class:`numpy.random.Generator` draws
    from that stream during ``fit``, so the stream's state after a refit
    depends on the order the pool members execute — which grouping or a
    thread pool would change.  Splitting off a child substream here, in
    pool order on the calling thread, fixes each member's draws before any
    dispatch happens; integer/None seeds are already order-independent and
    are left untouched.
    """
    seed = getattr(model, "seed", None)
    if isinstance(seed, np.random.Generator):
        model.seed = seed.spawn(1)[0]


def rolling_one_step(
    factory: ForecasterFactory,
    y: np.ndarray,
    train_len: int,
    *,
    refit_every: int = 50,
    max_history: Optional[int] = None,
    warm_start: bool = False,
) -> np.ndarray:
    """Walk-forward one-step predictions of ``y[train_len:]``.

    At each step ``t >= train_len`` the model (fit on data up to ``t``)
    predicts ``y[t]``; the true value is then appended.  The model refits
    every *refit_every* steps, optionally on only the last *max_history*
    observations (a monitor's bounded memory).  With *warm_start* each
    refit seeds its optimizer from the previous fit's parameters (much
    faster; defaults off so the historical benchmark outputs are
    unchanged bit-for-bit).
    """
    arr = np.asarray(y, dtype=np.float64).ravel()
    n = arr.shape[0]
    if not (0 < train_len < n):
        raise ForecastError(f"train_len must be in 1..{n - 1}, got {train_len}")
    if refit_every < 1:
        raise ForecastError(f"refit_every must be >= 1, got {refit_every}")
    model = factory()
    model.fit(_window(arr[:train_len], max_history))
    preds = np.empty(n - train_len)
    since_fit = 0
    for k, t in enumerate(range(train_len, n)):
        if since_fit >= refit_every:
            previous = model if warm_start else None
            model = factory()
            warm_fit(model, _window(arr[:t], max_history), previous)
            since_fit = 0
        preds[k] = model.predict_one()
        model.append(arr[t])
        since_fit += 1
    return preds


def _window(arr: np.ndarray, max_history: Optional[int]) -> np.ndarray:
    if max_history is not None and arr.shape[0] > max_history:
        return arr[-max_history:]
    return arr


@dataclass
class SelectionTrace:
    """Per-step record of what the selector did (offline analysis).

    ``per_model_predictions`` carries ``np.nan`` at steps where a member
    failed to predict; ``failed`` flags exactly those steps so downstream
    scoring can mask them instead of silently propagating NaN into
    :func:`~repro.forecast.metrics.mse`.
    """

    chosen: List[str]
    predictions: np.ndarray
    per_model_predictions: Dict[str, np.ndarray]
    failed: Dict[str, np.ndarray] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.failed is None:
            self.failed = {
                name: ~np.isfinite(pred)
                for name, pred in self.per_model_predictions.items()
            }

    def model_mse(self, name: str, actual: np.ndarray) -> float:
        """A member's MSE against *actual*, failed steps masked out.

        Raises :class:`~repro.errors.ForecastError` when the member never
        produced a prediction, rather than returning NaN.
        """
        from repro.forecast.metrics import mse

        a = np.asarray(actual, dtype=np.float64).ravel()
        pred = self.per_model_predictions[name]
        ok = ~self.failed[name]
        if not ok.any():
            raise ForecastError(
                f"model {name!r} failed every step; no MSE is defined"
            )
        return mse(a[ok], pred[ok])


class DynamicModelSelector:
    """Live minimum-trailing-MSE model selector.

    Parameters
    ----------
    factories:
        Ordered mapping name → zero-arg constructor of an (unfitted)
        :class:`Forecaster`.  The paper's example pool is two ARIMA and two
        NARNET configurations.
    period:
        The fitness window ``T_p`` of Eq. (14).
    refit_every:
        Full refits happen every this many observed values.
    max_history:
        Bound on the history length used at refit (None = unbounded).
    warm_start:
        Seed each periodic refit's optimizer with the outgoing model's
        parameters (see :meth:`Forecaster.start_hint`).  Refits converge
        in a fraction of the iterations on slowly drifting monitor
        series; the *initial* :meth:`fit` is always cold.
    workers:
        Refit the pool members concurrently on a thread pool of this size
        (``<= 1`` = inline).  Member fits are independent, so this only
        changes wall-clock.
    tracer:
        Optional event sink; each :meth:`predict_one` emits a
        :class:`~repro.obs.events.ModelSelected` naming the answering
        pool member (Eq. 14 in action).
    metrics:
        Optional registry; :meth:`observe` keeps the per-member
        ``sheriff_forecast_trailing_mse{model=...}`` gauges current, and
        best-member prediction failures count in
        ``sheriff_selector_fallback_total``.
    confidence:
        Confidence-aware arbitration (off by default; when off, behaviour
        is byte-identical to the historical selector).  The Eq. (14)
        winner still answers, but its ``1 - interval_alpha`` prediction
        interval is consulted: when the interval width spikes above
        ``width_spike`` times the trailing median width, the answer widens
        to the interval's *upper* bound — the conservative side for
        overload pre-alerting (assume the worst while the model distrusts
        itself).  Members without interval support answer with their point
        forecast unchanged.
    interval_alpha:
        Interval level used by the confidence mode (band covers
        ``1 - interval_alpha``).
    width_spike:
        Spike factor on the trailing median interval width that triggers
        conservative widening.
    """

    def __init__(
        self,
        factories: Dict[str, ForecasterFactory],
        *,
        period: int = 20,
        refit_every: int = 50,
        max_history: Optional[int] = None,
        warm_start: bool = True,
        workers: int = 0,
        tracer: Tracer = NULL_TRACER,
        metrics: Optional[MetricsRegistry] = None,
        confidence: bool = False,
        interval_alpha: float = 0.2,
        width_spike: float = 2.0,
    ) -> None:
        if not factories:
            raise ForecastError("selector needs at least one model factory")
        if period < 1:
            raise ForecastError(f"period must be >= 1, got {period}")
        if refit_every < 1:
            raise ForecastError(f"refit_every must be >= 1, got {refit_every}")
        if not (0.0 < interval_alpha < 1.0):
            raise ForecastError(
                f"interval_alpha must be in (0, 1), got {interval_alpha}"
            )
        if width_spike <= 1.0:
            raise ForecastError(
                f"width_spike must be > 1, got {width_spike}"
            )
        self.factories = dict(factories)
        self.period = period
        self.refit_every = refit_every
        self.max_history = max_history
        self.warm_start = warm_start
        self.workers = workers
        self.names = list(factories.keys())
        self.tracer = tracer
        self.metrics = metrics
        self.confidence = confidence
        self.interval_alpha = interval_alpha
        self.width_spike = width_spike
        self._step = 0
        self._models: Dict[str, Forecaster] = {}
        # errors older than the fitness window T_p can never influence
        # Eq. (14); a bounded deque keeps observe() O(period) per step
        self._errors: Dict[str, Deque[float]] = {
            n: deque(maxlen=period) for n in self.names
        }
        # running Σerr² per member, maintained incrementally alongside the
        # deques so the trailing-MSE gauges cost O(pool), not O(pool·period)
        self._sq_sums: Dict[str, float] = {n: 0.0 for n in self.names}
        self._last_pred: Dict[str, float] = {}
        self._last_best: Optional[str] = None
        self.last_interval: Optional[PredictionInterval] = None
        self._width_hist: Deque[float] = deque(maxlen=max(4, period))
        self._history: Optional[np.ndarray] = None
        self._pool: Optional[WorkerPool] = None
        self._since_fit = 0
        self._fitted = False

    # ------------------------------------------------------------------ #
    def fit(self, y: np.ndarray) -> "DynamicModelSelector":
        """Fit every pool member on the training series."""
        arr = np.asarray(y, dtype=np.float64).ravel()
        self._history = arr.copy()
        self._refit_all()
        self._errors = {n: deque(maxlen=self.period) for n in self.names}
        self._sq_sums = {n: 0.0 for n in self.names}
        self._last_pred = {}
        self._last_best = None
        self.last_interval = None
        self._width_hist.clear()
        self._since_fit = 0
        self._fitted = True
        return self

    def _fit_one(
        self, name: str
    ) -> Tuple[str, Optional[Forecaster], Optional[Exception]]:
        assert self._history is not None
        model = self.factories[name]()
        _pin_stream(model)
        return self._fit_prepared((name, model))

    def _fit_prepared(
        self, item: Tuple[str, Forecaster]
    ) -> Tuple[str, Optional[Forecaster], Optional[Exception]]:
        assert self._history is not None
        name, model = item
        previous = self._models.get(name) if self.warm_start else None
        try:
            warm_fit(model, _window(self._history, self.max_history), previous)
            return name, model, None
        except (ConvergenceError, ForecastError) as exc:
            return name, None, exc

    def _refit_all(self) -> None:
        assert self._history is not None
        # Construct every member serially in pool order and pin any shared
        # RNG stream *before* dispatch: from here on, neither the grouped
        # dispatch order below nor pool scheduling can change what a member
        # draws during fit.
        prepared = []
        for name in self.names:
            model = self.factories[name]()
            _pin_stream(model)
            prepared.append((name, model))
        # group same-class members together so pooled refits of a large
        # mixed pool batch their (cache-friendly) kernels; results are
        # installed by name, so this order is invisible to callers
        prepared.sort(key=lambda item: type(item[1]).__name__)
        if self.workers > 1 and len(self.names) > 1:
            if self._pool is None:
                self._pool = WorkerPool(
                    self.workers, backend="thread", name="sheriff-refit"
                )
            results, _ = self._pool.map_ordered(self._fit_prepared, prepared)
        else:
            results = [self._fit_prepared(item) for item in prepared]
        models = {name: model for name, model, _ in results if model is not None}
        failures = [(name, exc) for name, model, exc in results if model is None]
        if not models:
            raise ConvergenceError(f"every pool member failed to fit: {failures}")
        # preserve pool order in the mapping — predict_one fallback and
        # repr stability rely on it
        self._models = {n: models[n] for n in self.names if n in models}

    # ------------------------------------------------------------------ #
    def best_model_name(self) -> str:
        """Pool member with minimum ``MSE_f(t, T_p)`` (ties → pool order)."""
        self._require_fitted()
        best_name = None
        best_score = np.inf
        for name in self.names:
            if name not in self._models:
                continue
            errs = self._errors[name]
            if not errs:
                score = 0.0  # no evidence against it yet
            else:
                e = np.asarray(errs)
                score = trailing_mse(e, e.shape[0] - 1, self.period)
            if score < best_score:
                best_score = score
                best_name = name
        assert best_name is not None
        return best_name

    def _fallback_best(self) -> str:
        """Best member *among those that predicted* (Eq. 14 on the rest).

        Used when the Eq. (14) winner failed to produce a prediction: the
        answer comes from the lowest-trailing-MSE member that did predict
        (ties → pool order), not from ``_last_pred`` insertion order.
        Counted in ``sheriff_selector_fallback_total``.
        """
        best_name = None
        best_score = np.inf
        for name in self.names:
            if name not in self._last_pred:
                continue
            errs = self._errors[name]
            if not errs:
                score = 0.0  # no evidence against it yet
            else:
                e = np.asarray(errs)
                score = trailing_mse(e, e.shape[0] - 1, self.period)
            if score < best_score:
                best_score = score
                best_name = name
        assert best_name is not None
        if self.metrics is not None:
            self.metrics.counter(
                "sheriff_selector_fallback_total", model=best_name
            ).inc()
        return best_name

    def _answer(self, best: str) -> float:
        """Finalize one prediction step: confidence widening + event."""
        pred = self._last_pred[best]
        self._last_best = best
        if self.confidence:
            pred = self._confident_answer(best, pred)
        if self.tracer.enabled:
            self.tracer.emit(
                ModelSelected(model=best, step=self._step, prediction=float(pred))
            )
        return pred

    def _confident_answer(self, best: str, pred: float) -> float:
        """Widen toward the conservative side on an interval-width spike."""
        interval = None
        model = self._models.get(best)
        if model is not None and getattr(model, "supports_intervals", False):
            try:
                interval = model.predict_one_interval(self.interval_alpha)
            except ForecastError:
                interval = None
        self.last_interval = interval
        if interval is None:
            return pred
        width = interval.width
        widened = False
        if len(self._width_hist) >= 4:
            median = float(np.median(self._width_hist))
            if median > 0.0 and width > self.width_spike * median:
                # the model stopped trusting itself: answer the upper
                # bound, the conservative side for overload pre-alerting
                pred = interval.upper
                widened = True
        self._width_hist.append(width)
        if widened and self.metrics is not None:
            self.metrics.counter(
                "sheriff_confidence_widened_total", model=best
            ).inc()
        return pred

    def last_answer_interval(
        self, alpha: Optional[float] = None
    ) -> Optional[PredictionInterval]:
        """Interval from the member that answered the last prediction.

        ``None`` when no prediction has been made yet, the answering
        member does not support intervals, or its band computation failed
        — callers degrade to the point forecast.
        """
        if self._last_best is None:
            return None
        model = self._models.get(self._last_best)
        if model is None or not getattr(model, "supports_intervals", False):
            return None
        try:
            return model.predict_one_interval(
                self.interval_alpha if alpha is None else alpha
            )
        except ForecastError:
            return None

    def predict_one(self) -> float:
        """One-step forecast from the currently best model.

        Also caches every member's one-step prediction so that
        :meth:`observe` can score the whole pool against the realized value.
        """
        self._require_fitted()
        self._last_pred = {}
        for name, model in self._models.items():
            try:
                self._last_pred[name] = model.predict_one()
            except ForecastError:
                continue
        if not self._last_pred:
            raise ForecastError("no pool member could produce a prediction")
        best = self.best_model_name()
        if best not in self._last_pred:
            best = self._fallback_best()
        return self._answer(best)

    def forecast(self, h: int = 1) -> np.ndarray:
        """h-step forecast from the currently best model."""
        self._require_fitted()
        best = self.best_model_name()
        return self._models[best].forecast(h)

    def observe(self, value: float) -> None:
        """Feed the realized value: score the pool, advance, maybe refit."""
        self._require_fitted()
        if not np.isfinite(value):
            raise ForecastError(f"observed value must be finite, got {value}")
        for name, pred in self._last_pred.items():
            dq = self._errors[name]
            err = float(value) - pred
            if len(dq) == dq.maxlen:
                evicted = dq[0]
                self._sq_sums[name] -= evicted * evicted
            dq.append(err)
            self._sq_sums[name] += err * err
        for model in self._models.values():
            model.append(float(value))
        assert self._history is not None
        self._history = np.concatenate((self._history, (float(value),)))
        self._step += 1
        self._since_fit += 1
        if self.metrics is not None:
            # the incremental Σerr² makes the gauge O(pool) per step
            # instead of O(pool·period); Eq. (14) arbitration still reads
            # the deques directly, so selection numerics are untouched
            for name in self.names:
                dq = self._errors[name]
                if not dq:
                    continue
                self.metrics.gauge(
                    "sheriff_forecast_trailing_mse", model=name
                ).set(max(self._sq_sums[name], 0.0) / len(dq))
        if self._since_fit >= self.refit_every:
            self._refit_all()
            self._since_fit = 0

    # ------------------------------------------------------------------ #
    def run(self, y: np.ndarray, train_len: int) -> SelectionTrace:
        """Offline walk-forward over ``y`` (Figs. 6–8 harness).

        Fits on ``y[:train_len]`` then predicts/observes each subsequent
        point, recording which member answered.
        """
        arr = np.asarray(y, dtype=np.float64).ravel()
        n = arr.shape[0]
        if not (0 < train_len < n):
            raise ForecastError(f"train_len must be in 1..{n - 1}, got {train_len}")
        self.fit(arr[:train_len])
        m = n - train_len
        preds = np.empty(m)
        chosen: List[str] = []
        per_model: Dict[str, List[float]] = {name: [] for name in self.names}
        failed: Dict[str, List[bool]] = {name: [] for name in self.names}
        for k, t in enumerate(range(train_len, n)):
            p = self.predict_one()
            preds[k] = p
            assert self._last_best is not None
            chosen.append(self._last_best)
            for name in self.names:
                per_model[name].append(self._last_pred.get(name, np.nan))
                failed[name].append(name not in self._last_pred)
            self.observe(arr[t])
        return SelectionTrace(
            chosen=chosen,
            predictions=preds,
            per_model_predictions={n: np.asarray(v) for n, v in per_model.items()},
            failed={n: np.asarray(v, dtype=bool) for n, v in failed.items()},
        )

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise ForecastError("DynamicModelSelector is not fitted")


def _batch_best_names(
    sels: Sequence[DynamicModelSelector],
) -> List[Optional[str]]:
    """Vectorized Eq. (14) arbitration for a fleet of selectors.

    Returns each selector's ``best_model_name()`` where the rectangular
    fast path applies, ``None`` where it does not (the caller falls back
    to the scalar method).  The fast path buckets selectors by (member
    tuple, error-window length); within a bucket every member's error
    deque has the same length ``L``, so one ``(members, L)`` matrix and a
    single ``mean(E*E, axis=1)`` reproduce :func:`trailing_mse` for every
    member at once — ``t = L - 1`` and ``maxlen = period`` make the
    trailing window the *whole* deque — and ``argmin``'s first-minimum
    rule is exactly the scalar loop's strict ``<`` pool-order tie-break.
    ``L = 0`` means every score is the no-evidence 0.0 and the first
    member wins, no arithmetic needed.
    """
    out: List[Optional[str]] = [None] * len(sels)
    buckets: Dict[Tuple[Tuple[str, ...], int], List[int]] = {}
    for i, s in enumerate(sels):
        names = tuple(s._models.keys())
        lens = {len(s._errors[n]) for n in names}
        if len(lens) != 1:
            continue  # ragged windows — scalar fallback scores these
        buckets.setdefault((names, lens.pop()), []).append(i)
    for (names, win_len), idxs in buckets.items():
        if win_len == 0:
            for i in idxs:
                out[i] = names[0]
            continue
        flat = [list(sels[i]._errors[n]) for i in idxs for n in names]
        e = np.asarray(flat, dtype=np.float64)
        scores = np.mean(e * e, axis=1).reshape(len(idxs), len(names))
        best = np.argmin(scores, axis=1)
        for row, i in enumerate(idxs):
            out[i] = names[int(best[row])]
    return out


def batch_predict_one(selectors: Sequence[DynamicModelSelector]) -> List[float]:
    """``[s.predict_one() for s in selectors]`` with batched member kernels.

    The fleet hot path: every selector's pool members are collected, the
    fitted plain-ARIMA members (across *all* selectors) are forecast in
    stacked per-order groups and the NaiveLast members answered with one
    gather, then each selector's Eq. (14) bookkeeping — the ``_last_pred``
    cache :meth:`DynamicModelSelector.observe` scores, the best-model
    choice (vectorized across the fleet via :func:`_batch_best_names`),
    the ``ModelSelected`` event — runs exactly as in the scalar method.
    Returns and side effects are byte-identical to the scalar loop; only
    the per-member call overhead is amortized.  Selectors running in the
    confidence-aware mode (``confidence=True``) answer through the scalar
    :meth:`DynamicModelSelector.predict_one` — their interval lookups and
    widening decisions are inherently per-selector — so a mixed fleet
    stays consistent with the scalar loop member by member.
    """
    from repro.forecast.batch import _forecast_group, group_fleet

    sels = list(selectors)
    out: List[Optional[float]] = [None] * len(sels)
    plain: List[int] = []
    for i, s in enumerate(sels):
        if s.confidence:
            out[i] = s.predict_one()
        else:
            plain.append(i)
    fleet = [sels[i] for i in plain]
    cursor: List[Tuple[DynamicModelSelector, str]] = []
    models: List[Forecaster] = []
    for s in fleet:
        s._require_fitted()
        s._last_pred = {}
        for name, model in s._models.items():
            cursor.append((s, name))
            models.append(model)
    preds: List[Optional[float]] = [None] * len(models)
    groups, naive, scalar = group_fleet(models)
    for (p, d, q), idxs in groups.items():
        grp = _forecast_group([models[i] for i in idxs], p, d, q, 1)
        col = grp[:, 0]
        for row, i in enumerate(idxs):
            preds[i] = float(col[row])
    for i in naive:
        preds[i] = float(models[i].y_[-1])
    for i in scalar:
        try:
            preds[i] = models[i].predict_one()
        except ForecastError:
            preds[i] = None
    for (s, name), pred in zip(cursor, preds):
        if pred is not None:
            s._last_pred[name] = pred
    bests = _batch_best_names(fleet)
    for i, s, fast_best in zip(plain, fleet, bests):
        if not s._last_pred:
            raise ForecastError("no pool member could produce a prediction")
        best = fast_best if fast_best is not None else s.best_model_name()
        if best not in s._last_pred:
            best = s._fallback_best()
        out[i] = s._answer(best)
    return out  # type: ignore[return-value]
