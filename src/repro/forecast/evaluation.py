"""Structured forecast backtesting.

The Figs. 6–8 benchmarks and the monitors all evaluate forecasters the
same way: walk forward over a series, optionally at several horizons,
and score each model.  This module makes that a first-class API:

* :func:`backtest` — walk-forward evaluation of one model at one horizon
  with a full per-step record;
* :func:`horizon_curve` — accuracy as a function of lead time (the
  K-STEP-AHEAD degradation the paper's pre-alert horizon trades against);
* :func:`compare_models` — one call scoring a whole model zoo on a
  series, returning a ranked table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ForecastError
from repro.forecast.base import Forecaster
from repro.forecast.metrics import mae, mse, rmse

__all__ = ["BacktestResult", "backtest", "horizon_curve", "compare_models"]

ForecasterFactory = Callable[[], Forecaster]


@dataclass(frozen=True)
class BacktestResult:
    """Outcome of one walk-forward evaluation."""

    horizon: int
    predictions: np.ndarray
    actuals: np.ndarray
    errors: np.ndarray

    @property
    def mse(self) -> float:
        return mse(self.actuals, self.predictions)

    @property
    def rmse(self) -> float:
        return rmse(self.actuals, self.predictions)

    @property
    def mae(self) -> float:
        return mae(self.actuals, self.predictions)

    @property
    def bias(self) -> float:
        """Mean signed error (actual − predicted)."""
        return float(self.errors.mean())


def backtest(
    factory: ForecasterFactory,
    y: np.ndarray,
    train_len: int,
    *,
    horizon: int = 1,
    refit_every: int = 50,
    max_history: Optional[int] = None,
    stride: int = 1,
) -> BacktestResult:
    """Walk-forward evaluation at a fixed *horizon*.

    At each origin ``t`` (every *stride* steps from ``train_len`` to
    ``n - horizon``), the model fit on ``y[:t]`` forecasts ``y[t + horizon
    - 1]``; the model then absorbs observations up to the next origin via
    ``append`` and refits from scratch every *refit_every* origins.
    """
    arr = np.asarray(y, dtype=np.float64).ravel()
    n = arr.shape[0]
    if not (0 < train_len < n):
        raise ForecastError(f"train_len must be in 1..{n - 1}, got {train_len}")
    if horizon < 1:
        raise ForecastError(f"horizon must be >= 1, got {horizon}")
    if stride < 1:
        raise ForecastError(f"stride must be >= 1, got {stride}")
    if refit_every < 1:
        raise ForecastError(f"refit_every must be >= 1, got {refit_every}")
    origins = list(range(train_len, n - horizon + 1, stride))
    if not origins:
        raise ForecastError(
            f"no evaluation origins: series length {n}, train {train_len}, "
            f"horizon {horizon}"
        )

    def window(upto: int) -> np.ndarray:
        lo = 0 if max_history is None else max(0, upto - max_history)
        return arr[lo:upto]

    model = factory()
    model.fit(window(origins[0]))
    fitted_upto = origins[0]
    since_fit = 0
    preds = np.empty(len(origins))
    actuals = np.empty(len(origins))
    for i, t in enumerate(origins):
        if since_fit >= refit_every:
            model = factory()
            model.fit(window(t))
            fitted_upto = t
            since_fit = 0
        else:
            while fitted_upto < t:
                model.append(float(arr[fitted_upto]))
                fitted_upto += 1
        preds[i] = model.forecast(horizon)[horizon - 1]
        actuals[i] = arr[t + horizon - 1]
        since_fit += 1
    return BacktestResult(
        horizon=horizon,
        predictions=preds,
        actuals=actuals,
        errors=actuals - preds,
    )


def horizon_curve(
    factory: ForecasterFactory,
    y: np.ndarray,
    train_len: int,
    horizons: Sequence[int],
    **kwargs,
) -> Dict[int, BacktestResult]:
    """Backtest the same model at several horizons (lead-time curve)."""
    if not horizons:
        raise ForecastError("need at least one horizon")
    return {
        int(h): backtest(factory, y, train_len, horizon=int(h), **kwargs)
        for h in horizons
    }


def compare_models(
    factories: Dict[str, ForecasterFactory],
    y: np.ndarray,
    train_len: int,
    *,
    horizon: int = 1,
    **kwargs,
) -> List[Dict[str, float]]:
    """Score a model zoo on one series; rows sorted by MSE ascending."""
    if not factories:
        raise ForecastError("need at least one model factory")
    rows: List[Dict[str, float]] = []
    for name, factory in factories.items():
        res = backtest(factory, y, train_len, horizon=horizon, **kwargs)
        rows.append(
            {
                "model": name,  # type: ignore[dict-item]
                "mse": res.mse,
                "rmse": res.rmse,
                "mae": res.mae,
                "bias": res.bias,
            }
        )
    rows.sort(key=lambda r: r["mse"])
    return rows
