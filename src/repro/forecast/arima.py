"""ARIMA(p, d, q) with conditional-sum-of-squares estimation.

The model on the ``d``-times-differenced series ``w_t = ∇^d Y_t`` is

    ``w_t = c + Σ_{i<=p} φ_i w_{t-i} + e_t + Σ_{j<=q} θ_j e_{t-j}``,
    ``e_t ~ WN(0, σ²)``  (the paper's ``φ(L) ∇^d Y_t = θ(L) Z_t``).

Estimation minimizes the conditional sum of squared innovations (CSS):
residuals are produced by one vectorized AR term plus a single
``scipy.signal.lfilter`` pass for the MA inversion — no per-sample Python
loop, per the HPC guide.  Stationarity and invertibility are kept by a
smooth root-penalty added to the CSS objective.

Forecasting follows the paper's Sec. IV-B exactly: minimum-MSE one-step
prediction, k-step values computed "recursively using the one-step-ahead
value as the historical data", then integrated back to the level scale
(Eq. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
from scipy import optimize, signal

from repro.errors import ConfigurationError, ConvergenceError, ForecastError
from repro.forecast.base import Forecaster
from repro.forecast.lag import difference, difference_heads, undifference

__all__ = ["ARIMA"]

_ROOT_PENALTY = 1e4
_ROOT_MARGIN = 1.001


def _css_residuals_ref(
    w: np.ndarray, c: float, phi: np.ndarray, theta: np.ndarray
) -> np.ndarray:
    """Conditional residuals of an ARMA(p, q) on *w* (first p samples condition).

    Vectorized: the AR part is a correlation, the MA inversion is an IIR
    filter with zero initial state (the CSS convention ``e_t = 0, t <= p``).
    General-order reference: :func:`_css_residuals` shortcuts the common
    low orders and the property suite asserts bitwise agreement with this.
    """
    p = phi.shape[0]
    q = theta.shape[0]
    m = w.shape[0]
    if m <= p:
        raise ForecastError(f"need more than p={p} differenced samples, got {m}")
    z = w[p:] - c
    if p:
        # AR contribution for t = p..m-1: Σ_i phi_i * w_{t-i}
        ar = signal.lfilter(np.concatenate(([0.0], phi)), [1.0], w)[p:]
        z = z - ar
    if q:
        e = signal.lfilter([1.0], np.concatenate(([1.0], theta)), z)
    else:
        e = z
    return e


def _css_residuals(
    w: np.ndarray, c: float, phi: np.ndarray, theta: np.ndarray
) -> np.ndarray:
    """CSS residuals; fast path for ``p <= 1`` (the fleet-monitor orders).

    For a single AR lag the FIR "filter" is one scalar-vector product —
    dispatching it through ``lfilter`` costs two orders of magnitude more
    than the arithmetic itself and dominates paper-scale managed runs.
    The product performs the same multiply-add per sample, so residuals
    are bit-identical to the reference path.
    """
    p = phi.shape[0]
    if p > 1:
        return _css_residuals_ref(w, c, phi, theta)
    m = w.shape[0]
    if m <= p:
        raise ForecastError(f"need more than p={p} differenced samples, got {m}")
    z = w[p:] - c
    if p:
        z = z - phi[0] * w[:-1]
    if theta.shape[0]:
        e = signal.lfilter([1.0], np.concatenate(([1.0], theta)), z)
    else:
        e = z
    return e


def _max_inverse_root_ref(coeffs: np.ndarray, kind: str) -> float:
    """Largest modulus of the inverse roots of ``1 - Σ c_i z^i`` (AR) or
    ``1 + Σ c_i z^i`` (MA).  Stationary/invertible iff < 1.  General-order
    reference for :func:`_max_inverse_root`."""
    if coeffs.shape[0] == 0:
        return 0.0
    sign = -1.0 if kind == "ar" else 1.0
    poly = np.concatenate(([1.0], sign * coeffs))
    # poly holds ascending powers of z; interpreting the same array as a
    # descending-power polynomial gives z^p * poly(1/z), whose roots are
    # exactly the inverse roots we want.
    inv = np.roots(poly)
    if inv.size == 0:
        return 0.0
    return float(np.abs(inv).max())


def _max_inverse_root(coeffs: np.ndarray, kind: str) -> float:
    """Largest inverse-root modulus; closed form for orders 0 and 1.

    The degree-1 polynomial ``1 ∓ c z`` has the single inverse root
    ``±c``, so its modulus is ``|c|`` — the eigenvalue route through
    ``np.roots`` returns exactly that value (the 1×1 companion matrix's
    only entry), just ~50× slower.  This sits inside the CSS objective,
    so it runs twice per optimizer evaluation.

    Exception: below LAPACK's scaling threshold (|c| < sqrt(safmin)/eps,
    ~6.7e-139) dgeev rescales the matrix and may round the last ULP, so
    ``np.roots`` is 1 ULP off the exact ``|c|`` there.  Every consumer
    only compares the result against thresholds near 1, so the closed
    form (which is exact) changes no fit at any magnitude.
    """
    n = coeffs.shape[0]
    if n == 0:
        return 0.0
    if n == 1:
        return float(abs(coeffs[0]))
    return _max_inverse_root_ref(coeffs, kind)


@dataclass
class ARIMA(Forecaster):
    """ARIMA(p, d, q) forecaster.

    Parameters
    ----------
    p, d, q:
        Autoregressive order, differencing order, moving-average order.
    include_constant:
        Estimate the drift/intercept ``c`` on the differenced scale.
    maxiter:
        L-BFGS iteration budget for the CSS optimization.
    """

    p: int = 1
    d: int = 1
    q: int = 1
    include_constant: bool = True
    maxiter: int = 200

    supports_warm_start = True
    supports_intervals = True

    # fitted state (populated by :meth:`fit`)
    const_: float = field(default=0.0, init=False, repr=False)
    phi_: np.ndarray = field(default=None, init=False, repr=False)  # type: ignore[assignment]
    theta_: np.ndarray = field(default=None, init=False, repr=False)  # type: ignore[assignment]
    sigma2_: float = field(default=0.0, init=False, repr=False)
    y_: np.ndarray = field(default=None, init=False, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.p < 0 or self.d < 0 or self.q < 0:
            raise ConfigurationError(
                f"ARIMA orders must be non-negative, got ({self.p}, {self.d}, {self.q})"
            )
        if self.maxiter < 1:
            raise ConfigurationError(f"maxiter must be >= 1, got {self.maxiter}")

    # ------------------------------------------------------------------ #
    # estimation
    # ------------------------------------------------------------------ #
    @property
    def num_params(self) -> int:
        return self.p + self.q + (1 if self.include_constant else 0)

    def _min_samples(self) -> int:
        return self.d + max(self.p + self.q + 2, 8) + self.p

    def start_hint(self) -> Optional[np.ndarray]:
        """Packed ``(c, φ, θ)`` of the current fit (warm-start payload)."""
        if not self._fitted or self.phi_ is None or self.theta_ is None:
            return None
        head = [self.const_] if self.include_constant else []
        return np.concatenate([np.asarray(head), self.phi_, self.theta_])

    def _feasible_start(self, start: np.ndarray) -> Optional[np.ndarray]:
        """Validate a warm start: right shape, finite, shrunk into the
        stationarity/invertibility region (same 0.98 target as the
        Hannan–Rissanen init).  ``None`` means "fall back to cold init"."""
        out = np.asarray(start, dtype=np.float64).ravel().copy()
        if out.shape != (self.num_params,) or not np.all(np.isfinite(out)):
            return None
        i = 1 if self.include_constant else 0
        for _ in range(40):
            r = max(
                _max_inverse_root(out[i : i + self.p], "ar"),
                _max_inverse_root(out[i + self.p :], "ma"),
            )
            if r < 0.98:
                return out
            out[i:] *= 0.7
        return None

    def fit(self, y: np.ndarray, start: Optional[np.ndarray] = None) -> "ARIMA":
        """Estimate by CSS.  *start* optionally warm-starts the optimizer
        with a previous fit's packed parameters (see :meth:`start_hint`);
        invalid or infeasible starts silently fall back to the
        Hannan–Rissanen initialization."""
        arr = self._check_series(y, self._min_samples())
        w = difference(arr, self.d)
        if np.std(w) < 1e-12:
            # perfectly deterministic after differencing: mean model
            self.const_ = float(w.mean()) if self.include_constant else 0.0
            self.phi_ = np.zeros(self.p)
            self.theta_ = np.zeros(self.q)
            self.sigma2_ = 0.0
            self.y_ = arr.copy()
            self._fitted = True
            self._init_state()
            return self

        x0 = self._feasible_start(start) if start is not None else None
        if x0 is None:
            x0 = self._hannan_rissanen_init(w)
        wc = w - w.mean()
        _WALL_BASE = 1e6 * (float(np.dot(wc, wc)) + 1.0)

        def objective(x: np.ndarray) -> float:
            c, phi, theta = self._unpack(x)
            r_ar = _max_inverse_root(phi, "ar")
            r_ma = _max_inverse_root(theta, "ma")
            # Hard sloped wall outside the stationarity/invertibility region:
            # evaluating the residual filter there would overflow, and the
            # slope steers L-BFGS back toward feasibility.
            wall = 0.0
            limit = 1.0 / _ROOT_MARGIN
            if r_ar >= limit:
                wall += _ROOT_PENALTY * (1.0 + r_ar - limit)
            if r_ma >= limit:
                wall += _ROOT_PENALTY * (1.0 + r_ma - limit)
            if wall > 0.0:
                return _WALL_BASE + wall
            e = _css_residuals(w, c, phi, theta)
            sse = float(np.dot(e, e))
            if not np.isfinite(sse):
                return _WALL_BASE
            return sse

        res = optimize.minimize(
            objective, x0, method="L-BFGS-B", options={"maxiter": self.maxiter}
        )
        if not np.isfinite(res.fun):
            raise ConvergenceError(
                f"ARIMA({self.p},{self.d},{self.q}) CSS optimization diverged"
            )
        c, phi, theta = self._unpack(res.x)
        # safety: if the optimizer somehow ended outside the feasible region
        # (possible when x0 was already on the wall), shrink back inside
        for _ in range(40):
            if max(_max_inverse_root(phi, "ar"), _max_inverse_root(theta, "ma")) < 1.0:
                break
            phi = phi * 0.7
            theta = theta * 0.7
        e = _css_residuals(w, c, phi, theta)
        n_eff = e.shape[0]
        self.const_, self.phi_, self.theta_ = c, phi, theta
        self.sigma2_ = float(np.dot(e, e) / max(n_eff, 1))
        self.y_ = arr.copy()
        self._fitted = True
        self._init_state()
        return self

    def _unpack(self, x: np.ndarray) -> Tuple[float, np.ndarray, np.ndarray]:
        i = 0
        c = float(x[0]) if self.include_constant else 0.0
        if self.include_constant:
            i = 1
        phi = np.asarray(x[i : i + self.p], dtype=np.float64)
        theta = np.asarray(x[i + self.p : i + self.p + self.q], dtype=np.float64)
        return c, phi, theta

    def _hannan_rissanen_init(self, w: np.ndarray) -> np.ndarray:
        """Hannan–Rissanen two-stage OLS start values (fall back to zeros)."""
        m = w.shape[0]
        p, q = self.p, self.q
        zeros = np.zeros(self.num_params)
        if self.include_constant:
            zeros[0] = float(w.mean())
        if p + q == 0:
            return zeros
        long_ar = min(max(p + q + 2, 5), m // 3)
        if long_ar < 1 or m - long_ar <= p + q + 2:
            return zeros
        try:
            # stage 1: long-AR residuals
            X1 = np.column_stack(
                [np.ones(m - long_ar)]
                + [w[long_ar - i : m - i] for i in range(1, long_ar + 1)]
            )
            beta1, *_ = np.linalg.lstsq(X1, w[long_ar:], rcond=None)
            ehat = np.zeros(m)
            ehat[long_ar:] = w[long_ar:] - X1 @ beta1
            # stage 2: regress w on its own lags and residual lags
            k = max(p, q, 1)
            start = long_ar + k
            if m - start <= p + q + 2:
                return zeros
            cols = [np.ones(m - start)]
            cols += [w[start - i : m - i] for i in range(1, p + 1)]
            cols += [ehat[start - j : m - j] for j in range(1, q + 1)]
            X2 = np.column_stack(cols)
            beta2, *_ = np.linalg.lstsq(X2, w[start:], rcond=None)
            out = np.zeros(self.num_params)
            i = 0
            if self.include_constant:
                out[0] = beta2[0]
                i = 1
            out[i : i + p] = beta2[1 : 1 + p]
            out[i + p : i + p + q] = beta2[1 + p : 1 + p + q]
            # shrink until strictly inside the stationarity/invertibility
            # region — the optimizer needs a feasible start
            for _ in range(40):
                r = max(
                    _max_inverse_root(out[i : i + p], "ar"),
                    _max_inverse_root(out[i + p :], "ma"),
                )
                if r < 0.98:
                    break
                out[i:] *= 0.7
            else:
                return zeros
            return out
        except np.linalg.LinAlgError:
            return zeros

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def residuals(self) -> np.ndarray:
        """In-sample CSS residuals on the differenced scale."""
        self._require_fitted()
        w = difference(self.y_, self.d)
        return _css_residuals(w, self.const_, self.phi_, self.theta_)

    def loglikelihood(self) -> float:
        """Gaussian CSS log-likelihood (up to the conditioning convention)."""
        self._require_fitted()
        e = self.residuals()
        n = e.shape[0]
        s2 = max(self.sigma2_, 1e-300)
        return float(-0.5 * n * (np.log(2.0 * np.pi * s2) + 1.0))

    def aic(self) -> float:
        """Akaike information criterion (includes the σ² parameter)."""
        return 2.0 * (self.num_params + 1) - 2.0 * self.loglikelihood()

    def _init_state(self) -> None:
        """Cache the O(p + q + d) forecasting state.

        ``forecast`` only needs the last ``p`` differenced values, the last
        ``q`` residuals, and the integration heads; caching them at fit
        time and updating them incrementally in :meth:`append` makes each
        monitor tick O(1) in the history length instead of re-filtering
        the whole series (the fleet-scale hot path).
        """
        w = difference(self.y_, self.d)
        e = _css_residuals(w, self.const_, self.phi_, self.theta_)
        self._w_tail: List[float] = [float(x) for x in w[-self.p :]] if self.p else []
        self._e_tail: List[float] = [float(x) for x in e[-self.q :]] if self.q else []
        self._heads: List[float] = difference_heads(self.y_, self.d)

    def _one_step_w(self) -> float:
        """One-step conditional mean on the differenced scale."""
        val = self.const_
        for i in range(1, self.p + 1):
            val += self.phi_[i - 1] * self._w_tail[-i]
        for j in range(1, self.q + 1):
            val += self.theta_[j - 1] * self._e_tail[-j]
        return float(val)

    def forecast(self, h: int = 1) -> np.ndarray:
        """MMSE forecasts ``P_t Y_{t+1..t+h}`` on the original level scale."""
        self._require_fitted()
        if h < 1:
            raise ForecastError(f"forecast horizon must be >= 1, got {h}")
        p, q = self.p, self.q
        # histories, most recent last (copies of the cached state)
        w_hist = list(self._w_tail)
        e_hist = list(self._e_tail)
        out_w = np.empty(h)
        for k in range(h):
            val = self.const_
            for i in range(1, p + 1):
                val += self.phi_[i - 1] * w_hist[-i]
            for j in range(1, q + 1):
                val += self.theta_[j - 1] * e_hist[-j]
            out_w[k] = val
            if p:
                w_hist.append(val)  # K-STEP-AHEAD: forecast becomes history
            if q:
                e_hist.append(0.0)  # future innovations have zero mean
        if self.d == 0:
            return out_w
        return undifference(out_w, self._heads)

    def forecast_interval(self, h: int = 1, alpha: float = 0.05) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Forecasts with a symmetric Gaussian ``1 - alpha`` band.

        Returns ``(mean, lower, upper)``.  Variance accumulates through the
        ψ-weights of the ARIMA representation (computed by filtering an
        impulse through the model, including the integration).
        """
        self._require_fitted()
        if not (0.0 < alpha < 1.0):
            raise ForecastError(f"alpha must be in (0, 1), got {alpha}")
        from scipy import stats

        mean = self.forecast(h)
        # psi weights of the ARMA part
        ar_poly = np.concatenate(([1.0], -self.phi_)) if self.p else np.array([1.0])
        ma_poly = np.concatenate(([1.0], self.theta_)) if self.q else np.array([1.0])
        impulse = np.zeros(h)
        impulse[0] = 1.0
        psi = signal.lfilter(ma_poly, ar_poly, impulse)
        # integration: ∇^{-d} corresponds to d cumulative sums of psi
        for _ in range(self.d):
            psi = np.cumsum(psi)
        var = self.sigma2_ * np.cumsum(psi**2)
        z = stats.norm.ppf(1.0 - alpha / 2.0)
        half = z * np.sqrt(var)
        return mean, mean - half, mean + half

    def append(self, value: float) -> None:
        """Advance state by one observation in O(p + q + d).

        The new differenced value chains through the integration heads;
        its innovation is the one-step prediction error against the cached
        state.  Equivalent to refiltering the full series (verified by the
        property suite) but independent of history length.
        """
        self._require_fitted()
        if not np.isfinite(value):
            raise ForecastError(f"appended value must be finite, got {value}")
        # concatenate directly: np.append's ravel/dispatch wrapper is pure
        # overhead at fleet scale and the result is byte-identical
        self.y_ = np.concatenate((self.y_, (float(value),)))
        cur = float(value)
        for level in range(self.d):
            nxt = cur - self._heads[level]
            self._heads[level] = cur
            cur = nxt
        e_new = cur - self._one_step_w()
        if self.p:
            self._w_tail.append(cur)
            del self._w_tail[: len(self._w_tail) - self.p]
        if self.q:
            self._e_tail.append(e_new)
            del self._e_tail[: len(self._e_tail) - self.q]

    def __repr__(self) -> str:
        tag = "fitted" if self._fitted else "unfitted"
        return f"ARIMA({self.p},{self.d},{self.q})[{tag}]"
