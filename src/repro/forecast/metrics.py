"""Forecast accuracy metrics.

The paper's selection fitness is the trailing mean squared prediction
error over period ``T_p`` (Eq. 14); the rest are standard companions used
in tests and benchmark reporting.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ForecastError

__all__ = ["mse", "rmse", "mae", "mape", "trailing_mse"]


def _pair(actual: np.ndarray, predicted: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(actual, dtype=np.float64).ravel()
    p = np.asarray(predicted, dtype=np.float64).ravel()
    if a.shape != p.shape:
        raise ForecastError(f"shape mismatch: actual {a.shape} vs predicted {p.shape}")
    if a.shape[0] == 0:
        raise ForecastError("empty series")
    if not np.isfinite(p).all():
        raise ForecastError(
            "predictions contain NaN/inf — a pool member failed some steps; "
            "mask them first (see SelectionTrace.failed / model_mse)"
        )
    return a, p


def mse(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean squared error."""
    a, p = _pair(actual, predicted)
    d = a - p
    return float(np.dot(d, d) / d.shape[0])


def rmse(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(actual, predicted)))


def mae(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute error."""
    a, p = _pair(actual, predicted)
    return float(np.mean(np.abs(a - p)))


def mape(actual: np.ndarray, predicted: np.ndarray, eps: float = 1e-9) -> float:
    """Mean absolute percentage error (%); near-zero actuals are skipped."""
    a, p = _pair(actual, predicted)
    mask = np.abs(a) > eps
    if not mask.any():
        raise ForecastError("all actual values are ~0; MAPE undefined")
    return float(100.0 * np.mean(np.abs((a[mask] - p[mask]) / a[mask])))


def trailing_mse(errors: np.ndarray, t: int, period: int) -> float:
    """Eq. (14): ``MSE_f(t, T_p) = (1/T_p) Σ_{i=t-T_p+1..t} ERROR_f(i)²``.

    *errors* is the per-step error history indexed by time unit; entries
    before the start of history are treated as absent (the window shrinks).
    """
    e = np.asarray(errors, dtype=np.float64).ravel()
    if period < 1:
        raise ForecastError(f"period must be >= 1, got {period}")
    if not (0 <= t < e.shape[0]):
        raise ForecastError(f"time {t} outside history of length {e.shape[0]}")
    lo = max(0, t - period + 1)
    win = e[lo : t + 1]
    return float(np.mean(win * win))
