"""Box–Jenkins order selection (Sec. IV-B / VI-A).

"We can use Box-Jenkins method to specify the parameters of ARIMA model"
— identification (choose ``d`` by stationarity, bound ``p``/``q`` by
PACF/ACF cutoffs), estimation (CSS fit for every candidate), and selection
(minimum AIC), returning the winning fitted model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConvergenceError, ForecastError
from repro.forecast.arima import ARIMA
from repro.forecast.stationarity import choose_difference_order

__all__ = ["BoxJenkinsResult", "select_arima_order"]


@dataclass(frozen=True)
class BoxJenkinsResult:
    """Outcome of an order search."""

    order: Tuple[int, int, int]
    model: ARIMA
    aic: float
    candidates: List[Tuple[Tuple[int, int, int], float]]
    """Every ``((p, d, q), aic)`` pair evaluated, sorted by AIC."""


def select_arima_order(
    y: np.ndarray,
    *,
    max_p: int = 3,
    max_q: int = 3,
    d: Optional[int] = None,
    max_d: int = 2,
    include_constant: bool = True,
) -> BoxJenkinsResult:
    """Grid-search ARIMA orders by AIC with ``d`` fixed first.

    Fixing ``d`` before comparing AICs keeps likelihoods comparable (models
    with different ``d`` are fit to different data).  ``d=None`` lets the
    stationarity heuristic choose.
    """
    arr = np.asarray(y, dtype=np.float64).ravel()
    if max_p < 0 or max_q < 0:
        raise ForecastError(f"max_p/max_q must be non-negative, got {max_p}/{max_q}")
    if max_p == 0 and max_q == 0:
        raise ForecastError("grid contains only the degenerate (0, d, 0) model")
    if d is None:
        d = choose_difference_order(arr, max_d)

    scored: List[Tuple[Tuple[int, int, int], float]] = []
    best: Optional[ARIMA] = None
    best_aic = np.inf
    for p in range(max_p + 1):
        for q in range(max_q + 1):
            if p == 0 and q == 0:
                continue
            model = ARIMA(p, d, q, include_constant=include_constant)
            try:
                model.fit(arr)
                a = model.aic()
            except (ConvergenceError, ForecastError, np.linalg.LinAlgError):
                continue
            if not np.isfinite(a):
                continue
            scored.append(((p, d, q), float(a)))
            if a < best_aic:
                best_aic = float(a)
                best = model
    if best is None:
        raise ConvergenceError("no ARIMA candidate converged on this series")
    scored.sort(key=lambda t: t[1])
    return BoxJenkinsResult(
        order=(best.p, best.d, best.q),
        model=best,
        aic=best_aic,
        candidates=scored,
    )
