"""The full migration cost function (Eq. 1 / Eq. 18).

``Cost(v_i, v_p) = C_r + f(v_i, v_p) + G(v_i, v_p)`` with

* ``C_r`` — the constant computing cost of initialization, reservation,
  commitment and activation (simulation value: 100);
* ``f`` — the dependency cost (:mod:`repro.costs.dependency`);
* ``G`` — the path-minimized transmission cost
  (:mod:`repro.costs.transmission`).

:class:`CostModel` binds the three to a cluster and exposes per-VM and
vectorized queries; it is the single cost oracle used by VMMIGRATION, the
k-median transform, and both baselines — so comparisons between managers
are apples-to-apples by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cluster.cluster import Cluster
from repro.costs.dependency import dependency_cost
from repro.costs.transmission import TransmissionCostTable, cached_transmission_table
from repro.errors import ConfigurationError

__all__ = ["CostParams", "CostModel"]


@dataclass(frozen=True)
class CostParams:
    """Scalar knobs of Eq. (1), defaulting to the paper's Sec. VI-B values."""

    migration_constant: float = 100.0  # C_r
    dependency_unit: float = 1.0  # C_d
    delta: float = 1.0  # δ — weight of transmission time T(e)
    eta: float = 1.0  # η — weight of utilization P(e)
    reference_capacity: float = 10.0
    bandwidth_threshold: float = 0.0  # B_t

    def __post_init__(self) -> None:
        if self.migration_constant < 0:
            raise ConfigurationError(
                f"C_r must be non-negative, got {self.migration_constant}"
            )
        if self.dependency_unit < 0:
            raise ConfigurationError(
                f"C_d must be non-negative, got {self.dependency_unit}"
            )


class CostModel:
    """Cost oracle bound to one cluster.

    Construction runs the (cached) shortest-path precomputation once;
    queries afterwards are O(1) per pair / O(racks) per vector.

    Parameters
    ----------
    cache:
        Enable the cost-kernel cache: the shortest-path table is memoized
        per (topology, knobs) — the paper's Floyd–Warshall step runs once
        per fabric instead of once per manager — and per-VM Eq. (1) cost
        vectors are cached keyed on the placement generation, invalidated
        precisely for moved VMs and their dependency neighbors.  Cached
        answers are computed by the same code as uncached ones, so results
        are bit-identical either way; vectors returned from the cache are
        shared and must be treated as read-only (every in-tree consumer
        only indexes them).
    """

    def __init__(
        self,
        cluster: Cluster,
        params: Optional[CostParams] = None,
        *,
        available_bandwidth: Optional[np.ndarray] = None,
        cache: bool = True,
    ) -> None:
        self.cluster = cluster
        self.params = params or CostParams()
        if cache and available_bandwidth is None:
            self.table = cached_transmission_table(
                cluster.topology,
                delta=self.params.delta,
                eta=self.params.eta,
                reference_capacity=self.params.reference_capacity,
                bandwidth_threshold=self.params.bandwidth_threshold,
            )
        else:
            self.table = TransmissionCostTable(
                cluster.topology,
                delta=self.params.delta,
                eta=self.params.eta,
                reference_capacity=self.params.reference_capacity,
                available_bandwidth=available_bandwidth,
                bandwidth_threshold=self.params.bandwidth_threshold,
            )
        self._rack_dist = self.table.rack_distance_matrix()
        self._cache_enabled = bool(cache)
        self._vec_cache: Dict[int, np.ndarray] = {}
        self._cache_gen = cluster.placement.generation
        self.cache_stats = {"hits": 0, "misses": 0, "invalidations": 0}

    # ------------------------------------------------------------------ #
    @property
    def rack_distances(self) -> np.ndarray:
        """Inter-rack physical distances along selected paths (view)."""
        return self._rack_dist

    def migration_cost(self, vm: int, dst_rack: int) -> float:
        """Full Eq. (1) cost of migrating *vm* into *dst_rack*.

        An intra-rack move still pays ``C_r`` (the VM is re-hosted) but has
        zero transmission and zero dependency delta only if its dependents'
        distances are unchanged — which they are, since D is rack-level.
        """
        pl = self.cluster.placement
        src_rack = int(pl.host_rack[pl.vm_host[vm]])
        cap = float(pl.vm_capacity[vm])
        trans = self.table.cost(cap, src_rack, dst_rack)
        dep = dependency_cost(
            self.cluster.dependencies,
            pl,
            self._rack_dist,
            vm,
            dst_rack,
            unit_cost=self.params.dependency_unit,
        )
        return self.params.migration_constant + dep + trans

    def sync_cache(self) -> None:
        """Drop per-VM vectors staled by migrations since the last sync.

        A move changes the moved VM's own vector (new source rack) and its
        dependency neighbors' vectors (a dependent changed racks); nothing
        else.  Called automatically by :meth:`migration_cost_vector`; the
        engine also calls it once at round start so that worker threads
        planning concurrently only ever *read* the synced cache.
        """
        if not self._cache_enabled:
            return
        pl = self.cluster.placement
        gen = pl.generation
        if gen == self._cache_gen:
            return
        moved = pl.moved_since(self._cache_gen)
        deps = self.cluster.dependencies
        # wholesale clear when targeted invalidation would touch most entries
        if len(moved) * 4 >= max(len(self._vec_cache), 1):
            self.cache_stats["invalidations"] += len(self._vec_cache)
            self._vec_cache.clear()
        else:
            for vm in moved:
                if self._vec_cache.pop(vm, None) is not None:
                    self.cache_stats["invalidations"] += 1
                for n in deps.neighbors(vm):
                    if self._vec_cache.pop(int(n), None) is not None:
                        self.cache_stats["invalidations"] += 1
        self._cache_gen = gen

    def migration_cost_vector(self, vm: int) -> np.ndarray:
        """Eq. (1) cost of *vm* against every destination rack (vectorized).

        With the cache enabled the returned array is shared — read-only by
        convention (consumers only index it).
        """
        if self._cache_enabled:
            self.sync_cache()
            out = self._vec_cache.get(vm)
            if out is not None:
                self.cache_stats["hits"] += 1
                return out
            out = self._compute_cost_vector(vm)
            self.cache_stats["misses"] += 1
            self._vec_cache[vm] = out
            return out
        return self._compute_cost_vector(vm)

    def _compute_cost_vector(self, vm: int) -> np.ndarray:
        pl = self.cluster.placement
        src_rack = int(pl.host_rack[pl.vm_host[vm]])
        cap = float(pl.vm_capacity[vm])
        trans = self.table.cost_vector(cap, src_rack)
        from repro.costs.dependency import dependent_racks

        racks = dependent_racks(self.cluster.dependencies, pl, vm)
        if racks.size:
            dep = self.params.dependency_unit * (
                self._rack_dist[:, racks].sum(axis=1)
                - self._rack_dist[src_rack, racks].sum()
            )
        else:
            dep = np.zeros(self.table.num_racks)
        return self.params.migration_constant + dep + trans

    def pairwise_rack_cost(self, capacity: float) -> np.ndarray:
        """``(racks, racks)`` matrix ``C_r + G`` for a given VM capacity.

        The k-median transform (Sec. V-A) works on rack-level costs where
        the dependency term is folded per-instance; this is its distance
        oracle.
        """
        r = self.table.num_racks
        out = (
            self.params.delta * capacity * self.table.sum_inv_b[:, :r]
            + self.params.eta * self.table.sum_util[:, :r]
            + self.params.migration_constant
        )
        np.fill_diagonal(out, 0.0)
        return out
