"""The full migration cost function (Eq. 1 / Eq. 18).

``Cost(v_i, v_p) = C_r + f(v_i, v_p) + G(v_i, v_p)`` with

* ``C_r`` — the constant computing cost of initialization, reservation,
  commitment and activation (simulation value: 100);
* ``f`` — the dependency cost (:mod:`repro.costs.dependency`);
* ``G`` — the path-minimized transmission cost
  (:mod:`repro.costs.transmission`).

:class:`CostModel` binds the three to a cluster and exposes per-VM and
vectorized queries; it is the single cost oracle used by VMMIGRATION, the
k-median transform, and both baselines — so comparisons between managers
are apples-to-apples by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.cluster import Cluster
from repro.costs.dependency import dependency_cost
from repro.costs.transmission import TransmissionCostTable
from repro.errors import ConfigurationError

__all__ = ["CostParams", "CostModel"]


@dataclass(frozen=True)
class CostParams:
    """Scalar knobs of Eq. (1), defaulting to the paper's Sec. VI-B values."""

    migration_constant: float = 100.0  # C_r
    dependency_unit: float = 1.0  # C_d
    delta: float = 1.0  # δ — weight of transmission time T(e)
    eta: float = 1.0  # η — weight of utilization P(e)
    reference_capacity: float = 10.0
    bandwidth_threshold: float = 0.0  # B_t

    def __post_init__(self) -> None:
        if self.migration_constant < 0:
            raise ConfigurationError(
                f"C_r must be non-negative, got {self.migration_constant}"
            )
        if self.dependency_unit < 0:
            raise ConfigurationError(
                f"C_d must be non-negative, got {self.dependency_unit}"
            )


class CostModel:
    """Cost oracle bound to one cluster.

    Construction runs the (cached) shortest-path precomputation once;
    queries afterwards are O(1) per pair / O(racks) per vector.
    """

    def __init__(
        self,
        cluster: Cluster,
        params: Optional[CostParams] = None,
        *,
        available_bandwidth: Optional[np.ndarray] = None,
    ) -> None:
        self.cluster = cluster
        self.params = params or CostParams()
        self.table = TransmissionCostTable(
            cluster.topology,
            delta=self.params.delta,
            eta=self.params.eta,
            reference_capacity=self.params.reference_capacity,
            available_bandwidth=available_bandwidth,
            bandwidth_threshold=self.params.bandwidth_threshold,
        )
        self._rack_dist = self.table.rack_distance_matrix()

    # ------------------------------------------------------------------ #
    @property
    def rack_distances(self) -> np.ndarray:
        """Inter-rack physical distances along selected paths (view)."""
        return self._rack_dist

    def migration_cost(self, vm: int, dst_rack: int) -> float:
        """Full Eq. (1) cost of migrating *vm* into *dst_rack*.

        An intra-rack move still pays ``C_r`` (the VM is re-hosted) but has
        zero transmission and zero dependency delta only if its dependents'
        distances are unchanged — which they are, since D is rack-level.
        """
        pl = self.cluster.placement
        src_rack = int(pl.host_rack[pl.vm_host[vm]])
        cap = float(pl.vm_capacity[vm])
        trans = self.table.cost(cap, src_rack, dst_rack)
        dep = dependency_cost(
            self.cluster.dependencies,
            pl,
            self._rack_dist,
            vm,
            dst_rack,
            unit_cost=self.params.dependency_unit,
        )
        return self.params.migration_constant + dep + trans

    def migration_cost_vector(self, vm: int) -> np.ndarray:
        """Eq. (1) cost of *vm* against every destination rack (vectorized)."""
        pl = self.cluster.placement
        src_rack = int(pl.host_rack[pl.vm_host[vm]])
        cap = float(pl.vm_capacity[vm])
        trans = self.table.cost_vector(cap, src_rack)
        from repro.costs.dependency import dependent_racks

        racks = dependent_racks(self.cluster.dependencies, pl, vm)
        if racks.size:
            dep = self.params.dependency_unit * (
                self._rack_dist[:, racks].sum(axis=1)
                - self._rack_dist[src_rack, racks].sum()
            )
        else:
            dep = np.zeros(self.table.num_racks)
        return self.params.migration_constant + dep + trans

    def pairwise_rack_cost(self, capacity: float) -> np.ndarray:
        """``(racks, racks)`` matrix ``C_r + G`` for a given VM capacity.

        The k-median transform (Sec. V-A) works on rack-level costs where
        the dependency term is folded per-instance; this is its distance
        oracle.
        """
        r = self.table.num_racks
        out = (
            self.params.delta * capacity * self.table.sum_inv_b[:, :r]
            + self.params.eta * self.table.sum_util[:, :r]
            + self.params.migration_constant
        )
        np.fill_diagonal(out, 0.0)
        return out
