"""The full migration cost function (Eq. 1 / Eq. 18).

``Cost(v_i, v_p) = C_r + f(v_i, v_p) + G(v_i, v_p)`` with

* ``C_r`` — the constant computing cost of initialization, reservation,
  commitment and activation (simulation value: 100);
* ``f`` — the dependency cost (:mod:`repro.costs.dependency`);
* ``G`` — the path-minimized transmission cost
  (:mod:`repro.costs.transmission`).

:class:`CostModel` binds the three to a cluster and exposes per-VM and
vectorized queries; it is the single cost oracle used by VMMIGRATION, the
k-median transform, and both baselines — so comparisons between managers
are apples-to-apples by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.costs.dependency import dependency_cost
from repro.costs.transmission import TransmissionCostTable, cached_transmission_table
from repro.errors import ConfigurationError

__all__ = ["CostParams", "CostModel"]


@dataclass(frozen=True)
class CostParams:
    """Scalar knobs of Eq. (1), defaulting to the paper's Sec. VI-B values."""

    migration_constant: float = 100.0  # C_r
    dependency_unit: float = 1.0  # C_d
    delta: float = 1.0  # δ — weight of transmission time T(e)
    eta: float = 1.0  # η — weight of utilization P(e)
    reference_capacity: float = 10.0
    bandwidth_threshold: float = 0.0  # B_t

    def __post_init__(self) -> None:
        if self.migration_constant < 0:
            raise ConfigurationError(
                f"C_r must be non-negative, got {self.migration_constant}"
            )
        if self.dependency_unit < 0:
            raise ConfigurationError(
                f"C_d must be non-negative, got {self.dependency_unit}"
            )


class CostModel:
    """Cost oracle bound to one cluster.

    Construction runs the (cached) shortest-path precomputation once;
    queries afterwards are O(1) per pair / O(racks) per vector.

    Parameters
    ----------
    cache:
        Enable the cost-kernel cache: the shortest-path table is memoized
        per (topology, knobs) — the paper's Floyd–Warshall step runs once
        per fabric instead of once per manager — and per-VM Eq. (1) cost
        vectors are cached keyed on the placement generation, invalidated
        precisely for moved VMs and their dependency neighbors.  Cached
        answers are computed by the same code as uncached ones, so results
        are bit-identical either way; vectors returned from the cache are
        shared and must be treated as read-only (every in-tree consumer
        only indexes them).
    """

    def __init__(
        self,
        cluster: Cluster,
        params: Optional[CostParams] = None,
        *,
        available_bandwidth: Optional[np.ndarray] = None,
        cache: bool = True,
    ) -> None:
        self.cluster = cluster
        self.params = params or CostParams()
        if cache and available_bandwidth is None:
            self.table = cached_transmission_table(
                cluster.topology,
                delta=self.params.delta,
                eta=self.params.eta,
                reference_capacity=self.params.reference_capacity,
                bandwidth_threshold=self.params.bandwidth_threshold,
            )
        else:
            self.table = TransmissionCostTable(
                cluster.topology,
                delta=self.params.delta,
                eta=self.params.eta,
                reference_capacity=self.params.reference_capacity,
                available_bandwidth=available_bandwidth,
                bandwidth_threshold=self.params.bandwidth_threshold,
            )
        self._rack_dist = self.table.rack_distance_matrix()
        self._cache_enabled = bool(cache)
        self._vec_cache: Dict[int, np.ndarray] = {}
        # topology-static transmission vectors keyed on (capacity, src rack);
        # never invalidated — a move changes *which* key a VM reads, not the
        # value stored under any key
        self._trans_cache: Dict[Tuple[float, int], np.ndarray] = {}
        self._cache_gen = cluster.placement.generation
        self.cache_stats = {
            "hits": 0, "misses": 0, "invalidations": 0, "repairs": 0,
            "primed": 0,
        }

    # ------------------------------------------------------------------ #
    @property
    def rack_distances(self) -> np.ndarray:
        """Inter-rack physical distances along selected paths (view)."""
        return self._rack_dist

    def migration_cost(self, vm: int, dst_rack: int) -> float:
        """Full Eq. (1) cost of migrating *vm* into *dst_rack*.

        An intra-rack move still pays ``C_r`` (the VM is re-hosted) but has
        zero transmission and zero dependency delta only if its dependents'
        distances are unchanged — which they are, since D is rack-level.
        """
        pl = self.cluster.placement
        src_rack = int(pl.host_rack[pl.vm_host[vm]])
        cap = float(pl.vm_capacity[vm])
        trans = self.table.cost(cap, src_rack, dst_rack)
        dep = dependency_cost(
            self.cluster.dependencies,
            pl,
            self._rack_dist,
            vm,
            dst_rack,
            unit_cost=self.params.dependency_unit,
        )
        return self.params.migration_constant + dep + trans

    def sync_cache(self) -> None:
        """Apply delta updates for migrations since the last sync.

        A move stales exactly the moved VM's own vector (new source rack)
        and its dependency neighbors' vectors (a dependent changed racks);
        nothing else.  Instead of dropping those entries wholesale, the
        stale rows are *repaired in place* — recomputed against the current
        placement, reusing the memoized per-(capacity, rack) transmission
        vectors — so untouched entries survive across rounds and the
        steady-state query path is a cache hit.  Lost/restore generation
        bumps (``src == dst`` in the move details) drop the VM's entry
        instead: a lost VM must not be planned against.

        Called automatically by :meth:`migration_cost_vector`; the engine
        also calls it once at round start so that worker threads planning
        concurrently only ever *read* the synced cache.
        """
        if not self._cache_enabled:
            return
        pl = self.cluster.placement
        gen = pl.generation
        if gen == self._cache_gen:
            return
        deps = self.cluster.dependencies
        # vm -> repair? (False = drop); later own-events override earlier
        # ones, neighbor staleness never downgrades an own drop
        plan: Dict[int, bool] = {}
        for vm, src, dst in pl.moves_since(self._cache_gen):
            plan[vm] = src != dst
            for n in deps.neighbors(vm):
                plan.setdefault(int(n), True)
        self._cache_gen = gen
        fix: list = []
        for vm, repair in plan.items():
            if self._vec_cache.pop(vm, None) is None:
                continue
            self.cache_stats["invalidations"] += 1
            if repair:
                fix.append(vm)
        if fix:
            self.cache_stats["repairs"] += len(fix)
            mat = self._compute_cost_matrix(np.asarray(fix, dtype=np.int64))
            for i, vm in enumerate(fix):
                self._vec_cache[vm] = mat[i]

    def migration_cost_vector(self, vm: int) -> np.ndarray:
        """Eq. (1) cost of *vm* against every destination rack (vectorized).

        With the cache enabled the returned array is shared — read-only by
        convention (consumers only index it).
        """
        if self._cache_enabled:
            self.sync_cache()
            out = self._vec_cache.get(vm)
            if out is not None:
                self.cache_stats["hits"] += 1
                return out
            out = self._compute_cost_vector(vm)
            self.cache_stats["misses"] += 1
            self._vec_cache[vm] = out
            return out
        return self._compute_cost_vector(vm)

    def prime_cost_vectors(self, vms) -> None:
        """Batch-fill the cache for *vms* ahead of planning (fleet prime).

        One stacked kernel computes every missing Eq. (1) vector, so the
        per-rack planners that follow read the cache instead of running
        the scalar kernel once per candidate.  Speculative fills are
        tallied under ``cache_stats["primed"]`` (not as misses — they are
        not demand queries).  No-op when the cache is disabled.
        """
        if not self._cache_enabled:
            return
        self.sync_cache()
        todo = list(
            dict.fromkeys(int(v) for v in vms if int(v) not in self._vec_cache)
        )
        if not todo:
            return
        mat = self._compute_cost_matrix(np.asarray(todo, dtype=np.int64))
        for i, vm in enumerate(todo):
            self._vec_cache[vm] = mat[i]
        self.cache_stats["primed"] += len(todo)

    def cost_rows(self, vms) -> np.ndarray:
        """Eq. (1) vectors for *vms*, stacked into a ``(len(vms), racks)`` matrix.

        The batched counterpart of per-VM :meth:`migration_cost_vector`
        calls: cached rows are gathered, missing rows are computed by one
        stacked kernel (and cached when the cache is enabled).  Every row
        is bit-identical to the scalar query for the same VM.  The result
        shares cached arrays — read-only by convention.
        """
        ids = [int(v) for v in vms]
        if not ids:
            return np.empty((0, self.table.num_racks))
        if not self._cache_enabled:
            return self._compute_cost_matrix(np.asarray(ids, dtype=np.int64))
        self.sync_cache()
        cache = self._vec_cache
        hits = 0
        missing = []
        for v in ids:
            if v in cache:
                hits += 1
            else:
                missing.append(v)
        if missing:
            missing = list(dict.fromkeys(missing))
            mat = self._compute_cost_matrix(np.asarray(missing, dtype=np.int64))
            for i, vm in enumerate(missing):
                cache[vm] = mat[i]
            self.cache_stats["misses"] += len(missing)
        self.cache_stats["hits"] += hits
        return np.stack([cache[v] for v in ids])

    def _trans_vector(self, cap: float, src_rack: int) -> np.ndarray:
        """Memoized ``G`` column for one (capacity, source-rack) pair.

        The transmission structure of Eq. (1) depends only on the fabric
        and the VM's size, so these vectors are shared across VMs and
        survive every migration — they are the rows/columns the
        incremental update never has to rebuild.  Shared, read-only.
        """
        if not self._cache_enabled:
            return self.table.cost_vector(cap, src_rack)
        key = (cap, src_rack)
        out = self._trans_cache.get(key)
        if out is None:
            out = self.table.cost_vector(cap, src_rack)
            self._trans_cache[key] = out
        return out

    def _compute_cost_vector(self, vm: int) -> np.ndarray:
        pl = self.cluster.placement
        src_rack = int(pl.host_rack[pl.vm_host[vm]])
        cap = float(pl.vm_capacity[vm])
        trans = self._trans_vector(cap, src_rack)
        from repro.costs.dependency import dependent_racks

        racks = dependent_racks(self.cluster.dependencies, pl, vm)
        if racks.size:
            dep = self.params.dependency_unit * (
                self._rack_dist[:, racks].sum(axis=1)
                - self._rack_dist[src_rack, racks].sum()
            )
        else:
            dep = np.zeros(self.table.num_racks)
        return self.params.migration_constant + dep + trans

    def _compute_cost_matrix(self, ids: np.ndarray) -> np.ndarray:
        """Batched :meth:`_compute_cost_vector` over *ids* — one stacked kernel.

        The transmission and constant terms are pure elementwise
        broadcasts, so their IEEE op order per element matches the scalar
        kernel exactly.  The ragged dependency reductions run through
        ``np.add.reduceat`` (strictly sequential per segment), which only
        matches ``np.sum`` below numpy's pairwise-summation block of 8
        elements — VMs with 8+ dependents take the scalar kernel row.
        """
        pl = self.cluster.placement
        deps = self.cluster.dependencies
        n = ids.size
        r = self.table.num_racks
        src = pl.host_rack[pl.vm_host[ids]]
        caps = pl.vm_capacity[ids].astype(np.float64)
        trans = (
            self.table.delta * caps[:, None] * self.table.sum_inv_b[src, :r]
            + self.table.eta * self.table.sum_util[src, :r]
        )
        trans[np.arange(n), src] = 0.0
        dep = np.zeros((n, r))
        rows = []  # row index of each VM with 1 <= degree < 8
        segs = []  # that VM's dependents' racks, in neighbor-sorted order
        for i, vm in enumerate(ids.tolist()):
            nbrs = sorted(deps.neighbors(vm))
            if not nbrs:
                continue
            racks = pl.host_rack[pl.vm_host[np.asarray(nbrs, dtype=np.int64)]]
            if len(nbrs) >= 8:
                dep[i] = self.params.dependency_unit * (
                    self._rack_dist[:, racks].sum(axis=1)
                    - self._rack_dist[src[i], racks].sum()
                )
            else:
                rows.append(i)
                segs.append(racks)
        if rows:
            sizes = [s.size for s in segs]
            cat = np.concatenate(segs)
            offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
            near = np.add.reduceat(self._rack_dist[:, cat], offsets, axis=1)
            src_rep = src[np.asarray(rows, dtype=np.int64)].repeat(sizes)
            here = np.add.reduceat(self._rack_dist[src_rep, cat], offsets)
            dep[rows] = (self.params.dependency_unit * (near - here[None, :])).T
        return self.params.migration_constant + dep + trans

    def pairwise_rack_cost(self, capacity: float) -> np.ndarray:
        """``(racks, racks)`` matrix ``C_r + G`` for a given VM capacity.

        The k-median transform (Sec. V-A) works on rack-level costs where
        the dependency term is folded per-instance; this is its distance
        oracle.
        """
        r = self.table.num_racks
        out = (
            self.params.delta * capacity * self.table.sum_inv_b[:, :r]
            + self.params.eta * self.table.sum_util[:, :r]
            + self.params.migration_constant
        )
        np.fill_diagonal(out, 0.0)
        return out
