"""Six-stage pre-copy live migration timeline (Sec. III-C, Fig. 2).

Stages: (1) initialization, (2) reservation, (3) iterative pre-copy,
(4) stop-and-copy, (5) commitment, (6) activation.  The paper folds the
hard-to-model stages into the constant ``C_r`` and treats the ~60 ms
downtime as zero; this module computes the *timeline* explicitly — it is
what justifies those constants, and the failure-injection tests use it to
check when migrations cannot converge (dirty rate ≥ bandwidth).

Classic pre-copy analysis (Clark et al., NSDI'05): with memory ``M``,
page-dirty rate ``d`` and transfer bandwidth ``b``, round ``i`` transfers
``M·(d/b)^i``; rounds continue until the remainder fits the downtime
budget or a round cap hits, then stop-and-copy sends the rest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError, MigrationError

__all__ = ["MigrationTimeline", "precopy_timeline"]


@dataclass(frozen=True)
class MigrationTimeline:
    """Durations of the four timed phases of Fig. 2 (seconds).

    ``t1`` initialization+reservation, ``t2`` iterative pre-copy,
    ``t3`` stop-and-copy (the downtime), ``t4`` commitment+activation.
    """

    t1: float
    t2: float
    t3: float
    t4: float
    rounds: int
    transferred: float
    """Total bytes moved across all pre-copy rounds plus the final copy."""

    @property
    def total(self) -> float:
        return self.t1 + self.t2 + self.t3 + self.t4

    @property
    def downtime(self) -> float:
        """Service interruption — only the stop-and-copy phase."""
        return self.t3


def precopy_timeline(
    memory: float,
    dirty_rate: float,
    bandwidth: float,
    *,
    setup_time: float = 0.5,
    finish_time: float = 0.2,
    downtime_target: float = 0.06,
    max_rounds: int = 30,
) -> MigrationTimeline:
    """Compute the pre-copy timeline.

    Parameters
    ----------
    memory:
        VM RAM footprint (MB).
    dirty_rate:
        Page-dirtying rate (MB/s) while the VM runs.
    bandwidth:
        Migration transfer bandwidth (MB/s).
    downtime_target:
        Stop-and-copy when the residual transfers within this budget
        (paper: ~60 ms).
    max_rounds:
        Cap on pre-copy iterations; when the dirty rate is too close to the
        bandwidth the residual stops shrinking and we must cut over anyway.

    Raises
    ------
    MigrationError
        If ``dirty_rate >= bandwidth``: the residual never shrinks, so
        pre-copy cannot converge (a migration attempted anyway would be
        rolled back by the commit path — see
        :meth:`repro.sim.inflight.TimedReceiverRegistry.commit_round_tolerant`).
    ConfigurationError
        On out-of-domain or non-finite parameters.  Non-finite inputs are
        rejected up front: a NaN dirty rate would otherwise slip past the
        convergence check (``nan >= 1.0`` is false) and poison every phase
        duration.
    """
    for name, value in (
        ("memory", memory),
        ("dirty_rate", dirty_rate),
        ("bandwidth", bandwidth),
        ("downtime_target", downtime_target),
    ):
        if not math.isfinite(value):
            raise ConfigurationError(f"{name} must be finite, got {value}")
    if memory <= 0:
        raise ConfigurationError(f"memory must be positive, got {memory}")
    if dirty_rate < 0:
        raise ConfigurationError(f"dirty_rate must be non-negative, got {dirty_rate}")
    if bandwidth <= 0:
        raise ConfigurationError(f"bandwidth must be positive, got {bandwidth}")
    if downtime_target <= 0:
        raise ConfigurationError(
            f"downtime_target must be positive, got {downtime_target}"
        )
    if max_rounds < 1:
        raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")

    ratio = dirty_rate / bandwidth
    if ratio >= 1.0:
        raise MigrationError(
            f"dirty rate {dirty_rate} >= bandwidth {bandwidth}: "
            "pre-copy cannot converge; throttle the VM or raise bandwidth"
        )
    budget = downtime_target * bandwidth  # residual that fits the downtime
    remaining = memory
    t2 = 0.0
    transferred = 0.0
    rounds = 0
    while remaining > budget and rounds < max_rounds:
        t2 += remaining / bandwidth
        transferred += remaining
        remaining *= ratio
        rounds += 1
    t3 = remaining / bandwidth
    transferred += remaining
    return MigrationTimeline(
        t1=setup_time,
        t2=t2,
        t3=t3,
        t4=finish_time,
        rounds=rounds,
        transferred=transferred,
    )
