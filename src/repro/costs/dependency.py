"""Dependency cost of a migration (Sec. III-C).

Moving ``m^k_ij`` from rack ``v_i`` to rack ``v_p`` changes the induced
dependency subgraph around the VM: traffic to each dependent VM now
travels from ``v_p`` instead of ``v_i``.  The paper expresses this as the
difference of induced-graph path lengths times the unit cost ``C_d``
(the ``C_d · D(e) · χ^p_i`` term after simplification — a pure function
``f(v_i, v_p)`` once the dependent racks are fixed).

We compute it directly as

    ``C_d · Σ_{r ∈ dep-racks(vm)} (D[v_p, r] − D[v_i, r])``

which is signed: moving *toward* one's dependents yields a negative
(beneficial) dependency cost.  ``D`` is the inter-rack distance along the
selected transmission paths.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.cluster.dependency import DependencyGraph
from repro.cluster.placement import Placement
from repro.errors import ConfigurationError

__all__ = ["dependency_cost", "dependent_racks"]


def dependent_racks(
    dependencies: DependencyGraph, placement: Placement, vm: int
) -> np.ndarray:
    """Racks currently hosting VMs dependent on *vm* (with multiplicity).

    Multiplicity matters: two dependents in the same rack double the
    traffic affected by the move.
    """
    nbrs = sorted(dependencies.neighbors(vm))
    if not nbrs:
        return np.empty(0, dtype=np.int64)
    idx = np.asarray(nbrs, dtype=np.int64)
    return placement.host_rack[placement.vm_host[idx]]


def dependency_cost(
    dependencies: DependencyGraph,
    placement: Placement,
    rack_distance: np.ndarray,
    vm: int,
    dst_rack: int,
    *,
    unit_cost: float = 1.0,
) -> float:
    """Signed dependency-cost delta of moving *vm* to *dst_rack*.

    Parameters
    ----------
    rack_distance:
        ``(racks, racks)`` inter-rack distance matrix ``D``.
    unit_cost:
        ``C_d``, the unit cost per distance in ``G_d`` (simulation: 1).
    """
    if unit_cost < 0:
        raise ConfigurationError(f"unit_cost must be non-negative, got {unit_cost}")
    n_racks = rack_distance.shape[0]
    if not (0 <= dst_rack < n_racks):
        raise ConfigurationError(f"dst_rack {dst_rack} out of range 0..{n_racks - 1}")
    src_rack = placement.host_rack[placement.vm_host[vm]]
    racks = dependent_racks(dependencies, placement, vm)
    if racks.size == 0:
        return 0.0
    delta = rack_distance[dst_rack, racks] - rack_distance[src_rack, racks]
    return float(unit_cost * delta.sum())
