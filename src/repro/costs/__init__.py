"""Migration cost model (Sec. III-C, Eq. 1; simplification Sec. V-A).

``Cost(v_i, v_p) = C_r + C_d · D(e) · χ^p_i + Σ_{e ∈ P(v_i, v_p)} (δ·T(e) + η·P(e))``

split into three modules:

* :mod:`~repro.costs.precopy` — the six-stage pre-copy live-migration
  timeline (Fig. 2) behind the constant ``C_r``;
* :mod:`~repro.costs.transmission` — path transmission cost with
  Floyd/Dijkstra-precomputed best paths (the ``g → G`` transformation);
* :mod:`~repro.costs.dependency` — the dependency-graph distance delta
  behind ``C_d · D(e) · χ``;
* :mod:`~repro.costs.model` — the :class:`CostModel` facade combining all
  three, consumed by VMMIGRATION and the k-median transform.
"""

from repro.costs.precopy import MigrationTimeline, precopy_timeline
from repro.costs.transmission import TransmissionCostTable
from repro.costs.dependency import dependency_cost
from repro.costs.model import CostModel, CostParams

__all__ = [
    "MigrationTimeline",
    "precopy_timeline",
    "TransmissionCostTable",
    "dependency_cost",
    "CostModel",
    "CostParams",
]
