"""Path transmission costs — the ``g(v_i, v_p, e_ip) → G(v_i, v_p)`` step.

Sec. V-A picks, for every rack pair, the path minimizing
``Σ_e (δ·T(e) + η·P(e))`` with ``T(e) = m.capacity / B(e)`` (transmission
time) and ``P(e) = B(e) / C(e)`` (bandwidth utilization rate), where
``B(e)`` is the available bandwidth (must exceed the threshold ``B_t``)
and ``C(e)`` the capacity.

``T(e)`` scales linearly with the migrating VM's capacity while ``P(e)``
does not, so we fix the *path* using a reference capacity (the paper's
Floyd–Warshall precomputation) and accumulate **both components
separately** along the chosen paths.  The per-VM cost is then

    ``g(cap, i, p) = δ·cap·Σ 1/B(e)  +  η·Σ B(e)/C(e)``

exactly, without re-running shortest paths per VM.

Implementation: one multi-source Dijkstra (scipy's C implementation — the
library's Floyd–Warshall kernel in :mod:`repro.topology.shortest_paths`
is kept for small graphs and cross-validation), followed by a fully
vectorized *pointer-doubling* pass that folds per-edge values along every
predecessor chain simultaneously — no Python loop over the ``O(n²)`` rack
pairs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple
from weakref import WeakKeyDictionary

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.errors import ConfigurationError, TopologyError
from repro.topology.base import Topology

__all__ = [
    "TransmissionCostTable",
    "cached_transmission_table",
    "transmission_table_cache_stats",
]


def _fold_path_sums(
    preds: np.ndarray,
    sources: np.ndarray,
    value_lookup: np.ndarray,
) -> np.ndarray:
    """Sum *value_lookup[u, v]* over every predecessor-chain edge.

    ``preds[i, j]`` is the predecessor of node ``j`` on the shortest path
    from ``sources[i]``; unreachable/source entries are negative.  Returns
    ``sums[i, j]`` = Σ of edge values along the path ``sources[i] → j``
    (0 for the source itself, ``inf`` for unreachable nodes).

    Pointer doubling: after ``k`` iterations each entry has folded ``2^k``
    hops, so ``ceil(log2(diameter))`` iterations suffice.
    """
    n_src, n = preds.shape
    rows = np.arange(n_src)
    cols = np.broadcast_to(np.arange(n), preds.shape)
    # scipy marks both the source itself and unreachable nodes with -9999;
    # distinguish them — the source is a zero-valued self-loop, unreachable
    # nodes are inf-valued self-loops.
    negative = preds < 0
    source_col = cols == sources[:, None]
    unreachable = negative & ~source_col
    jump = np.where(negative, cols, preds)

    sums = value_lookup[jump, cols].astype(np.float64)
    sums[rows, sources] = 0.0
    sums[unreachable] = np.inf

    # fold until every chain has reached its source
    max_iters = max(1, int(np.ceil(np.log2(max(n, 2)))) + 1)
    for _ in range(max_iters):
        nxt = np.take_along_axis(jump, jump, axis=1)
        if np.array_equal(nxt, jump):
            break
        sums += np.take_along_axis(sums, jump, axis=1)
        jump = nxt
    sums[unreachable] = np.inf
    return sums


class TransmissionCostTable:
    """Precomputed per-rack-pair transmission cost components.

    Parameters
    ----------
    topology:
        The wired fabric.
    delta, eta:
        The paper's ``δ`` and ``η`` weights (simulation: both 1).
    reference_capacity:
        VM capacity used to *select* paths (cost evaluation then uses the
        actual capacity on the selected paths).
    available_bandwidth:
        Per-edge ``B(e)``; defaults to full link capacity.  Must be
        positive where used.
    bandwidth_threshold:
        ``B_t``: edges with ``B(e) <= B_t`` are unusable for migration.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        delta: float = 1.0,
        eta: float = 1.0,
        reference_capacity: float = 10.0,
        available_bandwidth: Optional[np.ndarray] = None,
        bandwidth_threshold: float = 0.0,
    ) -> None:
        if delta < 0 or eta < 0:
            raise ConfigurationError(f"delta/eta must be non-negative, got {delta}/{eta}")
        if reference_capacity <= 0:
            raise ConfigurationError(
                f"reference_capacity must be positive, got {reference_capacity}"
            )
        self.topology = topology
        self.delta = delta
        self.eta = eta
        lt = topology.links
        n = topology.num_nodes
        if available_bandwidth is None:
            bw = lt.capacity.copy()
        else:
            bw = np.asarray(available_bandwidth, dtype=np.float64)
            if bw.shape != lt.capacity.shape:
                raise ConfigurationError(
                    f"available_bandwidth must have shape {lt.capacity.shape}, got {bw.shape}"
                )
            if (bw > lt.capacity + 1e-9).any():
                raise ConfigurationError("available bandwidth exceeds link capacity")
        usable = bw > bandwidth_threshold
        if not usable.any():
            raise TopologyError("no link satisfies the bandwidth threshold")

        u, v = lt.u[usable], lt.v[usable]
        b, c = bw[usable], lt.capacity[usable]
        d = lt.distance[usable]
        inv_b = 1.0 / b
        util = b / c
        weight = delta * reference_capacity * inv_b + eta * util

        def sym(vals: np.ndarray) -> csr_matrix:
            return csr_matrix(
                (np.concatenate([vals, vals]), (np.concatenate([u, v]), np.concatenate([v, u]))),
                shape=(n, n),
            )

        graph = sym(weight)
        sources = topology.racks()
        dist, preds = dijkstra(
            graph, directed=False, indices=sources, return_predecessors=True
        )
        self.path_weight = dist  # (racks, nodes) combined δT̄+ηP along path

        # dense symmetric per-edge value lookups (float32: summed in float64)
        def dense(vals: np.ndarray) -> np.ndarray:
            m = np.zeros((n, n), dtype=np.float32)
            m[u, v] = vals
            m[v, u] = vals
            return m

        self.sum_inv_b = _fold_path_sums(preds, sources, dense(inv_b))
        self.sum_util = _fold_path_sums(preds, sources, dense(util))
        self.sum_distance = _fold_path_sums(preds, sources, dense(d))
        self.hops = _fold_path_sums(preds, sources, dense(np.ones_like(d)))
        self._preds = preds

    # ------------------------------------------------------------------ #
    @property
    def num_racks(self) -> int:
        return self.topology.num_racks

    def cost(self, capacity: float, src_rack: int, dst_rack: int) -> float:
        """``Σ_{e∈P}(δ·T(e) + η·P(e))`` for a VM of the given capacity."""
        if capacity < 0:
            raise ConfigurationError(f"capacity must be non-negative, got {capacity}")
        self._check_racks(src_rack, dst_rack)
        if src_rack == dst_rack:
            return 0.0
        return float(
            self.delta * capacity * self.sum_inv_b[src_rack, dst_rack]
            + self.eta * self.sum_util[src_rack, dst_rack]
        )

    def cost_vector(self, capacity: float, src_rack: int) -> np.ndarray:
        """Vectorized :meth:`cost` from one source to every rack."""
        if capacity < 0:
            raise ConfigurationError(f"capacity must be non-negative, got {capacity}")
        self._check_racks(src_rack, 0)
        r = self.num_racks
        out = (
            self.delta * capacity * self.sum_inv_b[src_rack, :r]
            + self.eta * self.sum_util[src_rack, :r]
        )
        out = out.copy()
        out[src_rack] = 0.0
        return out

    def rack_distance(self, src_rack: int, dst_rack: int) -> float:
        """Physical distance ``D`` accumulated along the chosen path."""
        self._check_racks(src_rack, dst_rack)
        if src_rack == dst_rack:
            return 0.0
        return float(self.sum_distance[src_rack, dst_rack])

    def rack_distance_matrix(self) -> np.ndarray:
        """``(racks, racks)`` physical-distance view of :attr:`sum_distance`."""
        r = self.num_racks
        m = self.sum_distance[:, :r].copy()
        np.fill_diagonal(m, 0.0)
        return m

    def path(self, src_rack: int, dst_rack: int) -> list[int]:
        """Node sequence of the selected path (for inspection/tests)."""
        self._check_racks(src_rack, dst_rack)
        if src_rack == dst_rack:
            return [src_rack]
        if self._preds[src_rack, dst_rack] < 0:
            raise TopologyError(f"rack {dst_rack} unreachable from {src_rack}")
        path = [dst_rack]
        cur = dst_rack
        for _ in range(self.topology.num_nodes):
            cur = int(self._preds[src_rack, cur])
            path.append(cur)
            if cur == src_rack:
                return path[::-1]
        raise TopologyError("predecessor chain did not terminate")

    def _check_racks(self, a: int, b: int) -> None:
        r = self.num_racks
        if not (0 <= a < r and 0 <= b < r):
            raise TopologyError(f"rack pair ({a}, {b}) out of range 0..{r - 1}")


# ---------------------------------------------------------------------- #
# topology-keyed memoization (the cost-kernel cache, part 1)
# ---------------------------------------------------------------------- #
# The shortest-path precomputation (the paper's Floyd–Warshall step) only
# depends on the topology and the scalar path-selection knobs, yet every
# CostModel construction used to redo it.  Experiments that build several
# managers over one fabric (Sheriff vs. baselines, multi-round sweeps) now
# share one table per (topology, knobs).  Entries die with their topology
# (weak keys), so clusters built in a loop do not accumulate tables.
_TABLE_MEMO: "WeakKeyDictionary[Topology, Dict[Tuple[float, float, float, float], TransmissionCostTable]]" = (
    WeakKeyDictionary()
)
_TABLE_STATS = {"builds": 0, "hits": 0}


def cached_transmission_table(
    topology: Topology,
    *,
    delta: float = 1.0,
    eta: float = 1.0,
    reference_capacity: float = 10.0,
    bandwidth_threshold: float = 0.0,
) -> TransmissionCostTable:
    """Memoized :class:`TransmissionCostTable` for full-capacity fabrics.

    Only the ``available_bandwidth=None`` case is cacheable — a dynamic
    bandwidth snapshot is per-round state, not a topology property; callers
    with one must build an uncached table.
    """
    key = (
        float(delta),
        float(eta),
        float(reference_capacity),
        float(bandwidth_threshold),
    )
    per_topo = _TABLE_MEMO.get(topology)
    if per_topo is None:
        per_topo = {}
        _TABLE_MEMO[topology] = per_topo
    table = per_topo.get(key)
    if table is not None:
        _TABLE_STATS["hits"] += 1
        return table
    table = TransmissionCostTable(
        topology,
        delta=delta,
        eta=eta,
        reference_capacity=reference_capacity,
        bandwidth_threshold=bandwidth_threshold,
    )
    _TABLE_STATS["builds"] += 1
    per_topo[key] = table
    return table


def transmission_table_cache_stats() -> Dict[str, int]:
    """Copy of the lifetime ``{"builds": ..., "hits": ...}`` counters."""
    return dict(_TABLE_STATS)
