"""Blackboard controller: prioritized knowledge sources over shared state.

The classic blackboard architecture, specialized for determinism: a
*blackboard* (any mutable object) holds the working state of one
problem, *knowledge sources* declare when they can contribute
(:meth:`KnowledgeSource.ready`) and what they do
(:meth:`KnowledgeSource.run`), and the *controller* repeatedly picks
the highest-priority ready source until none remains.  Selection is a
pure function of (source priorities, registration order, blackboard
state), so a seeded problem replays identically.

Sheriff's management round maps onto this shape directly (see
:mod:`repro.service.round`): fault injection, alert dispatch,
in-flight landings, freeze-set computation, per-rack planning, FCFS
commit and round close are each one knowledge source, and the round
scheduler in :class:`~repro.sim.engine.SheriffSimulation` is the
controller's driver.  Knowledge sources publish
:class:`~repro.service.events.ServiceEvent` notifications on the bus
as they contribute, which is how the serve-mode driver and metric
bridges observe progress without touching engine internals.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.service.bus import EventBus
from repro.service.events import ServiceEvent

__all__ = ["KnowledgeSource", "FunctionSource", "BlackboardController"]


class KnowledgeSource:
    """One contributor to the blackboard.

    Subclasses override :meth:`ready` (precondition on the blackboard)
    and :meth:`run` (the contribution; may publish events on *bus*).
    ``triggers`` documents which event kinds make this source ready —
    purely descriptive metadata used by ``docs/service.md`` tables and
    introspection, the controller itself schedules off :meth:`ready`.
    """

    name: str = "ks"
    priority: int = 0
    triggers: Tuple[str, ...] = ()

    def ready(self, board) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def run(self, board, bus: EventBus) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<KS {self.name} priority={self.priority}>"


class FunctionSource(KnowledgeSource):
    """A knowledge source built from two callables (tests, ad-hoc wiring)."""

    def __init__(
        self,
        name: str,
        ready: Callable[[object], bool],
        run: Callable[[object, EventBus], None],
        *,
        priority: int = 0,
        triggers: Sequence[str] = (),
    ) -> None:
        self.name = name
        self.priority = priority
        self.triggers = tuple(triggers)
        self._ready = ready
        self._run = run

    def ready(self, board) -> bool:
        return self._ready(board)

    def run(self, board, bus: EventBus) -> None:
        self._run(board, bus)


class ControlError(ReproError):
    """The controller detected a scheduling bug (non-quiescing sources)."""


class BlackboardController:
    """Deterministic scheduler over registered knowledge sources.

    Parameters
    ----------
    bus:
        The event bus handed to every source's :meth:`~KnowledgeSource.run`
        and used for the controller's own ingest subscription.
    sources:
        Initial knowledge sources (more via :meth:`register`).
    max_steps:
        Safety valve: one :meth:`run` invocation may fire at most this
        many source activations before raising :class:`ControlError`
        (a source whose ``ready`` never goes false would otherwise spin
        forever).
    """

    def __init__(
        self,
        bus: EventBus,
        sources: Sequence[KnowledgeSource] = (),
        *,
        max_steps: int = 100_000,
    ) -> None:
        self.bus = bus
        self.max_steps = max_steps
        self._seq = 0
        # (-priority, registration seq) — stable, deterministic ordering
        self._sources: List[Tuple[Tuple[int, int], KnowledgeSource]] = []
        self.board: Optional[object] = None
        """The currently bound blackboard (one problem at a time)."""
        for src in sources:
            self.register(src)

    # ------------------------------------------------------------------ #
    def register(self, source: KnowledgeSource) -> None:
        """Add *source*; order among equal priorities is registration order."""
        self._seq += 1
        self._sources.append(((-source.priority, self._seq), source))
        self._sources.sort(key=lambda entry: entry[0])

    @property
    def sources(self) -> List[KnowledgeSource]:
        """Registered sources in scheduling order (highest priority first)."""
        return [src for _, src in self._sources]

    def bind(self, board: Optional[object]) -> None:
        """Attach (or with ``None`` detach) the working blackboard."""
        self.board = board

    # ------------------------------------------------------------------ #
    def step(self) -> Optional[KnowledgeSource]:
        """Run the single highest-priority ready source; ``None`` if idle."""
        board = self.board
        if board is None:
            raise ControlError("no blackboard bound; call bind() first")
        for _, source in self._sources:
            if source.ready(board):
                source.run(board, self.bus)
                return source
        return None

    def run(self) -> int:
        """Drive the bound blackboard to quiescence; returns activations."""
        steps = 0
        while self.step() is not None:
            steps += 1
            if steps > self.max_steps:
                raise ControlError(
                    f"knowledge sources did not quiesce within "
                    f"{self.max_steps} activations (scheduling bug?)"
                )
        return steps
