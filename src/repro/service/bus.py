"""A deterministic in-process event bus.

The bus is the spine of the service core (see ``docs/service.md``):
publishers hand it :class:`~repro.service.events.ServiceEvent` values,
subscribers receive them synchronously, and the dispatch order is a
pure function of (subscription order, publish order) — no threads, no
wall clock, no randomness.  That determinism is load-bearing: the
seeded round scheduler drives the whole engine over this bus and must
reproduce byte-identical results run after run.

Semantics
---------
* **Typed subscription.**  ``subscribe(EventType, handler)`` receives
  every published event that is an instance of ``EventType`` (subclass
  match included, so subscribing to :class:`ServiceEvent` observes
  everything).
* **Priority.**  Handlers for one event run in descending ``priority``;
  ties break by subscription order.
* **Run-to-completion.**  An event's handlers all finish before the
  next event dispatches.  Events published *from inside* a handler are
  queued FIFO and dispatched after the current event completes — a
  handler never observes a half-dispatched cascade.
* **Counting.**  ``counts`` tallies published events by kind (cheap,
  always on); ``record=True`` additionally keeps the full ``history``
  for tests and determinism audits.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Callable, Deque, Dict, List, Optional, Tuple, Type

from repro.service.events import ServiceEvent

__all__ = ["EventBus", "Subscription"]

Handler = Callable[[ServiceEvent], None]


class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`; supports cancel."""

    __slots__ = ("bus", "event_type", "key", "active")

    def __init__(
        self,
        bus: "EventBus",
        event_type: Type[ServiceEvent],
        key: Tuple[int, int],
    ) -> None:
        self.bus = bus
        self.event_type = event_type
        self.key = key
        self.active = True

    def cancel(self) -> None:
        """Stop receiving events (idempotent)."""
        if self.active:
            self.bus._unsubscribe(self)
            self.active = False


class EventBus:
    """Deterministic synchronous pub/sub over typed service events."""

    def __init__(self, *, record: bool = False) -> None:
        # event_type -> ordered list of (sort_key, handler, subscription);
        # sort_key = (-priority, seq) so plain list-sort gives dispatch order
        self._subscribers: Dict[
            Type[ServiceEvent], List[Tuple[Tuple[int, int], Handler, Subscription]]
        ] = {}
        # event_type -> merged+sorted dispatch list; rebuilt lazily after
        # any subscribe/unsubscribe (dispatch order is unchanged — the
        # cache just avoids re-merging the MRO on every publish)
        self._dispatch_cache: Dict[
            Type[ServiceEvent], List[Tuple[Tuple[int, int], Handler, Subscription]]
        ] = {}
        self._queue: Deque[ServiceEvent] = deque()
        self._dispatching = False
        self._seq = 0
        self.counts: Counter = Counter()
        """Published events tallied by ``kind`` (always maintained)."""
        self.history: Optional[List[ServiceEvent]] = [] if record else None
        """Every published event in publish order, when ``record=True``."""

    # ------------------------------------------------------------------ #
    def subscribe(
        self,
        event_type: Type[ServiceEvent],
        handler: Handler,
        *,
        priority: int = 0,
    ) -> Subscription:
        """Register *handler* for events of *event_type* (and subclasses).

        Higher *priority* handlers run earlier; equal priorities run in
        subscription order.  Returns a :class:`Subscription` whose
        ``cancel()`` detaches the handler.
        """
        if not (isinstance(event_type, type) and issubclass(event_type, ServiceEvent)):
            raise TypeError(f"subscribe() needs a ServiceEvent type, got {event_type!r}")
        self._seq += 1
        key = (-priority, self._seq)
        sub = Subscription(self, event_type, key)
        self._subscribers.setdefault(event_type, []).append((key, handler, sub))
        self._dispatch_cache.clear()
        return sub

    def _unsubscribe(self, sub: Subscription) -> None:
        entries = self._subscribers.get(sub.event_type, [])
        self._subscribers[sub.event_type] = [e for e in entries if e[2] is not sub]
        self._dispatch_cache.clear()

    def subscriber_count(self, event_type: Type[ServiceEvent]) -> int:
        """Handlers that would see an event of exactly *event_type*."""
        return len(self._handlers_for(event_type))

    # ------------------------------------------------------------------ #
    def publish(self, event: ServiceEvent) -> None:
        """Publish *event*; dispatches synchronously (run-to-completion).

        When called from inside a handler, the event is queued and
        dispatched after the in-flight event's handlers finish.
        """
        if not isinstance(event, ServiceEvent):
            raise TypeError(f"publish() needs a ServiceEvent, got {event!r}")
        self.counts[event.kind] += 1
        if self.history is not None:
            self.history.append(event)
        if not self._subscribers:
            # nobody listening: the event would queue, drain and dispatch
            # to an empty handler list — skip the machinery entirely
            return
        self._queue.append(event)
        if not self._dispatching:
            self._drain()

    def _handlers_for(
        self, event_type: Type[ServiceEvent]
    ) -> List[Tuple[Tuple[int, int], Handler, Subscription]]:
        cached = self._dispatch_cache.get(event_type)
        if cached is not None:
            return cached
        merged: List[Tuple[Tuple[int, int], Handler, Subscription]] = []
        for klass in event_type.__mro__:
            if klass in self._subscribers:
                merged.extend(self._subscribers[klass])
        merged.sort(key=lambda entry: entry[0])
        self._dispatch_cache[event_type] = merged
        return merged

    def _drain(self) -> None:
        self._dispatching = True
        try:
            while self._queue:
                event = self._queue.popleft()
                for _, handler, sub in self._handlers_for(type(event)):
                    if sub.active:
                        handler(event)
        finally:
            self._dispatching = False

    # ------------------------------------------------------------------ #
    def event_kinds(self) -> List[str]:
        """Recorded event kinds in publish order (requires ``record``)."""
        if self.history is None:
            raise ValueError("EventBus(record=True) required for event_kinds()")
        return [e.kind for e in self.history]

    def clear_history(self) -> None:
        """Drop recorded history and counts (subscriptions stay)."""
        self.counts.clear()
        if self.history is not None:
            self.history.clear()
