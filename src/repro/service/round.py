"""The management round as a blackboard problem.

This module re-expresses the body of the historical
``SheriffSimulation.run_round`` as eight prioritized knowledge sources
over a :class:`RoundBlackboard`.  The engine publishes
:class:`~repro.service.events.RoundOpened` and one
:class:`~repro.service.events.AlertRaised` per alert on its bus, then
drives the controller to quiescence; the sources fire in strict
priority order — fault injection, census, alert dispatch, in-flight
landings, freeze-set, planning, FCFS commit, close — which is exactly
the statement order of the old monolithic method.  Every stage calls
the same underlying implementations (:class:`ShimManager`,
:class:`ReceiverRegistry`, the fault injector) in the same order with
the same arguments, so the decomposition is byte-identical to the
seed engine: identical ``RoundSummary`` values, final placements,
metric counters and obs-trace streams (``tests/service`` pins golden
values captured from the pre-service engine).

Import discipline: this module must never import
:mod:`repro.sim.engine` at module scope — the engine imports *us* to
build its controller, and ``make lint``'s AST cycle checker enforces
the direction.  The blackboard carries the simulation handle instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.alerts.alert import Alert
from repro.cluster.snapshot import FleetSnapshot
from repro.errors import SimulationError
from repro.obs.events import AlertDelivered, MigrationAborted, MigrationLanded
from repro.parallel.pool import auto_inline
from repro.service.blackboard import BlackboardController, KnowledgeSource
from repro.service.bus import EventBus
from repro.service.events import (
    AlertRaised,
    FaultInjected,
    MigrationCommitted,
    RackPlanned,
    RequestSent,
    RoundOpened,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps the import DAG
    from repro.migration.manager import RoundReport
    from repro.sim.engine import SheriffSimulation

__all__ = [
    "RoundBlackboard",
    "ROUND_KNOWLEDGE_SOURCES",
    "build_round_controller",
]


@dataclass
class RoundBlackboard:
    """Shared working state of one management round.

    Phase flags (``opened`` … ``closed``) gate the knowledge sources;
    the result fields are filled in as sources contribute and read back
    by the engine when it assembles the :class:`RoundSummary`.
    """

    sim: "SheriffSimulation"
    now: int
    vm_alerts: Dict[int, float]
    host_load: Optional[object] = None

    # --- ingest (fed by the bus subscription) ---
    ingest: List[Alert] = field(default_factory=list)

    # --- phase flags ---
    opened: bool = False
    faults_done: bool = False
    census_done: bool = False
    dispatched: bool = False
    landings_done: bool = False
    frozen: Optional[frozenset] = None
    planned: bool = False
    committed: bool = False
    closed: bool = False

    # --- results ---
    fault_info: Optional[object] = None
    std_before: float = 0.0
    by_rack: Dict[int, List[Alert]] = field(default_factory=dict)
    racks: List[int] = field(default_factory=list)
    skipped_racks: List[int] = field(default_factory=list)
    reports: List["RoundReport"] = field(default_factory=list)
    commit_failed: List[tuple] = field(default_factory=list)
    moved: List[Tuple[int, int]] = field(default_factory=list)
    std_after: float = 0.0
    degraded: bool = False


class FaultSource(KnowledgeSource):
    """Environment acts first: scheduled faults land before dispatch."""

    name = "faults"
    priority = 100
    triggers = ("RoundOpened",)

    def ready(self, board: RoundBlackboard) -> bool:
        return board.opened and not board.faults_done

    def run(self, board: RoundBlackboard, bus: EventBus) -> None:
        sim = board.sim
        board.faults_done = True
        if sim.faults is None:
            return
        with sim.profiler.section("faults"):
            board.fault_info = sim.faults.begin_round(board.now)
        info = board.fault_info
        if info.injected or info.degraded:
            bus.publish(
                FaultInjected(
                    round=board.now,
                    injected=info.injected,
                    degraded=info.degraded,
                )
            )


class CensusSource(KnowledgeSource):
    """Pre-action balance census: the std-dev the shims plan against."""

    name = "census"
    priority = 90
    triggers = ("RoundOpened",)

    def ready(self, board: RoundBlackboard) -> bool:
        return board.faults_done and not board.census_done

    def run(self, board: RoundBlackboard, bus: EventBus) -> None:
        board.std_before = board.sim.cluster.workload_std()
        board.census_done = True


class DispatchSource(KnowledgeSource):
    """Group ingested alerts by rack and emit the delivery trace."""

    name = "dispatch"
    priority = 80
    triggers = ("AlertRaised",)

    def ready(self, board: RoundBlackboard) -> bool:
        return board.census_done and not board.dispatched

    def run(self, board: RoundBlackboard, bus: EventBus) -> None:
        tracer = board.sim.tracer
        for alert in board.ingest:
            board.by_rack.setdefault(alert.rack, []).append(alert)
            if tracer.enabled:
                tracer.emit(
                    AlertDelivered(
                        rack=alert.rack,
                        alert_kind=alert.kind.name,
                        magnitude=float(alert.magnitude),
                        host=alert.host,
                        switch=alert.switch,
                    )
                )
        board.dispatched = True


class LandingSource(KnowledgeSource):
    """Timed engines: land migrations whose Fig. 2 window elapsed."""

    name = "landings"
    priority = 70
    triggers = ("RoundOpened",)

    def ready(self, board: RoundBlackboard) -> bool:
        return board.dispatched and not board.landings_done

    def run(self, board: RoundBlackboard, bus: EventBus) -> None:
        sim = board.sim
        if sim.inflight is not None:
            # the timed registry stamps reservations with the round index
            sim.receivers.set_round(board.now)
            tracer = sim.tracer
            # the landing mutates the placement, so the SLO accountant
            # reads each record's source host and timeline first
            due = sim.inflight.records_due(board.now) if sim.slo is not None else []
            for vm, host in sim.inflight.complete_due(board.now):
                # landing starts the post-migration cooldown
                sim._last_move[vm] = board.now
                sim.metrics.counter("sheriff_migrations_landed_total").inc()
                if tracer.enabled:
                    tracer.emit(MigrationLanded(vm=vm, dst_host=host))
            for rec in due:
                sim.slo.charge_downtime(rec.vm, rec.dst_host, timeline=rec.timeline)
                sim.slo.charge_stretch(rec.vm, rec.src_host, rec.dst_host)
        board.landings_done = True


class FreezeSource(KnowledgeSource):
    """Compute the round's frozen set (cooldown, in-flight, lost VMs)."""

    name = "freeze"
    priority = 60
    triggers = ("RoundOpened",)

    def ready(self, board: RoundBlackboard) -> bool:
        return board.landings_done and board.frozen is None

    def run(self, board: RoundBlackboard, bus: EventBus) -> None:
        sim = board.sim
        frozen = frozenset(
            vm
            for vm, moved_at in sim._last_move.items()
            if board.now - moved_at < sim.migration_cooldown
        )
        if sim.inflight is not None:
            frozen = frozen | sim.inflight.vms_in_flight
        if sim.faults is not None:
            lost = sim.cluster.placement.lost_vms
            if lost:
                frozen = frozen | frozenset(lost)
        board.frozen = frozen


class PlanSource(KnowledgeSource):
    """Per-shim Alg. 1: the plan/execute split or the serial loop."""

    name = "plan"
    priority = 50
    triggers = ("AlertRaised",)

    def ready(self, board: RoundBlackboard) -> bool:
        return board.frozen is not None and not board.planned

    def run(self, board: RoundBlackboard, bus: EventBus) -> None:
        sim = board.sim
        racks = sorted(board.by_rack)
        for rack in racks:
            if rack not in sim.managers:
                raise SimulationError(f"alert addressed to unknown rack {rack}")
        if sim.faults is not None and sim.faults.down_racks:
            # a rack with a dead shim plans nothing this round; its
            # alerts are dropped (nobody is listening), not queued
            down = sim.faults.down_racks
            board.skipped_racks = [r for r in racks if r in down]
            racks = [r for r in racks if r not in down]
        board.racks = racks
        if sim.config.planner != "thread" and racks:
            # persistent pooled planning: forked shard workers read the
            # shipped shared-memory fleet, plan their racks, and return
            # plans that the order-sensitive REQUEST/commit half below
            # executes serialized in rack order — byte-identical to the
            # workers=0 loop (the sharded-identity suite pins this)
            pool = sim._planner_pool()
            before = dict(pool.stats)
            with sim.profiler.section("plan"):
                plans, worker_secs = pool.plan_round(
                    racks,
                    board.by_rack,
                    board.vm_alerts,
                    board.frozen,
                    board.host_load,
                )
            for worker, secs in sorted(worker_secs.items()):
                sim.profiler.add(f"plan/{worker}", secs)
            m = sim.metrics
            m.gauge("sheriff_pool_attached").set(pool.stats["attached"])
            m.counter("sheriff_pool_ships_total").inc(
                pool.stats["ships"] - before.get("ships", 0)
            )
            m.counter("sheriff_pool_repairs_total").inc(
                pool.stats["repairs"] - before.get("repairs", 0)
            )
            shard_map = pool.shard_map
            for plan in plans:
                report = sim.managers[plan.rack].execute_plan(
                    plan, sim._port, shard_map=shard_map
                )
                board.reports.append(report)
                self._announce(board, bus, report)
        elif sim.config.workers != 0 and racks:
            # plan/execute split: pure per-rack work (classification,
            # PRIORITY, cost matrices, first matching) fans out over
            # the pool against round-static shared state, then the
            # order-sensitive REQUEST/commit half runs serialized in
            # rack order — byte-identical to the interleaved loop.
            # The SoA fleet snapshot is built once here and shared
            # read-only by every planner.
            sim.cost_model.sync_cache()
            # fleet prime: one stacked Eq. (1) kernel for every VM the
            # planners could query, so per-rack block builds hit the
            # cache instead of looping the scalar kernel
            sim.cost_model.prime_cost_vectors(
                v for v in board.vm_alerts if v not in board.frozen
            )
            snapshot = FleetSnapshot(sim.cluster.placement)
            snapshot.prime_alerts(board.vm_alerts)

            def plan_one(rack: int):
                return sim.managers[rack].plan_round(
                    board.by_rack[rack],
                    board.vm_alerts,
                    board.frozen,
                    board.host_load,
                    snapshot=snapshot,
                )

            with sim.profiler.section("plan"):
                if auto_inline(
                    sim.config.workers,
                    len(racks),
                    # weight the decision by the work actually fanned out
                    # (alerted racks x monitored VMs), not rack count alone
                    est_cost=len(racks) * len(board.vm_alerts),
                    cost_threshold=sim.config.auto_inline_threshold,
                ):
                    # workers=-1 below the pool break-even: plan
                    # inline without ever creating the pool
                    t0 = perf_counter()
                    plans = [plan_one(rack) for rack in racks]
                    worker_secs = {"w0": perf_counter() - t0}
                else:
                    plans, worker_secs = sim._plan_pool().map_ordered(
                        plan_one, racks
                    )
            for worker, secs in sorted(worker_secs.items()):
                sim.profiler.add(f"plan/{worker}", secs)
            for plan in plans:
                report = sim.managers[plan.rack].execute_plan(plan, sim._port)
                board.reports.append(report)
                self._announce(board, bus, report)
        else:
            for rack in racks:
                report = sim.managers[rack].process_round(
                    board.by_rack[rack],
                    board.vm_alerts,
                    sim._port,
                    board.frozen,
                    board.host_load,
                )
                board.reports.append(report)
                self._announce(board, bus, report)
        board.planned = True

    @staticmethod
    def _announce(board: RoundBlackboard, bus: EventBus, report) -> None:
        stats = report.migration
        if stats.requested:
            bus.publish(
                RequestSent(round=board.now, rack=report.rack, count=stats.requested)
            )
        bus.publish(
            RackPlanned(
                round=board.now,
                rack=report.rack,
                alerts_processed=report.alerts_processed,
                selected=tuple(report.selected_for_migration),
                requested=stats.requested,
                acked=stats.acked,
                rejected=stats.rejected,
            )
        )


class CommitSource(KnowledgeSource):
    """The round's FCFS commit (tolerant under a fault layer)."""

    name = "commit"
    priority = 40
    triggers = ("RackPlanned",)

    def ready(self, board: RoundBlackboard) -> bool:
        return board.planned and not board.committed

    def run(self, board: RoundBlackboard, bus: EventBus) -> None:
        sim = board.sim
        m = sim.metrics
        tracer = sim.tracer
        # instant engines mutate the placement in commit_round, so the SLO
        # accountant snapshots source hosts while the reservations are
        # still pending (timed engines charge at landing instead)
        pre_hosts: Dict[int, int] = {}
        if sim.slo is not None and sim.inflight is None:
            pl = sim.cluster.placement
            pre_hosts = {
                vm: int(pl.vm_host[vm]) for vm, _ in sim.receivers.reserved_moves
            }
        with sim.profiler.section("commit"):
            if sim.faults is not None:
                # degraded-mode commit: a reservation whose move fails
                # (destination crashed after the ACK, pre-copy cannot
                # converge) is rolled back and reported — the round
                # always completes, never half-applies
                moved, commit_failed = sim.receivers.commit_round_tolerant()
                board.commit_failed = commit_failed
                for vm, host, reason in commit_failed:
                    m.counter("sheriff_rollbacks_total").inc()
                    if tracer.enabled:
                        tracer.emit(
                            MigrationAborted(vm=vm, dst_host=host, reason=reason)
                        )
            else:
                moved = sim.receivers.commit_round()
        board.moved = moved
        m.counter("sheriff_migrations_committed_total").inc(len(moved))
        for vm, host in moved:
            bus.publish(MigrationCommitted(round=board.now, vm=vm, dst_host=host))
        if sim.inflight is None:
            for vm, host in moved:
                sim._last_move[vm] = board.now
                m.counter("sheriff_migrations_landed_total").inc()
                if tracer.enabled:
                    tracer.emit(MigrationLanded(vm=vm, dst_host=host))
            if sim.slo is not None:
                for vm, host in moved:
                    sim.slo.charge_downtime(vm, host)
                    sim.slo.charge_stretch(vm, pre_hosts[vm], host)
        board.committed = True


class CloseSource(KnowledgeSource):
    """Post-action census and degraded-mode bookkeeping."""

    name = "close"
    priority = 30
    triggers = ("MigrationCommitted",)

    def ready(self, board: RoundBlackboard) -> bool:
        return board.committed and not board.closed

    def run(self, board: RoundBlackboard, bus: EventBus) -> None:
        sim = board.sim
        m = sim.metrics
        if sim.slo is not None:
            # overload charges against the load the round ran with, plus
            # violation-episode bookkeeping
            sim.slo.charge_round(board.now, board.host_load)
        board.std_after = sim.cluster.workload_std()
        m.gauge("sheriff_workload_std").set(board.std_after)
        board.degraded = bool(board.skipped_racks) or bool(board.commit_failed) or (
            board.fault_info is not None and board.fault_info.degraded
        )
        if board.degraded:
            m.counter("sheriff_degraded_rounds_total").inc()
        board.closed = True


ROUND_KNOWLEDGE_SOURCES = (
    FaultSource,
    CensusSource,
    DispatchSource,
    LandingSource,
    FreezeSource,
    PlanSource,
    CommitSource,
    CloseSource,
)
"""The engine's knowledge sources in priority order (see docs/service.md)."""


def build_round_controller(
    sim: "SheriffSimulation", bus: Optional[EventBus] = None
) -> BlackboardController:
    """Wire the round knowledge sources and ingest subscriptions for *sim*.

    The controller's bus subscriptions are what make the cascade
    event-driven: :class:`RoundOpened` flips the blackboard's ``opened``
    flag (making :class:`FaultSource` ready) and every
    :class:`AlertRaised` appends to the blackboard's ingest list.  The
    engine binds a fresh :class:`RoundBlackboard` per round, publishes
    the round's events, and calls ``controller.run()``.
    """
    bus = bus if bus is not None else EventBus()
    controller = BlackboardController(
        bus, [klass() for klass in ROUND_KNOWLEDGE_SOURCES]
    )

    def _on_opened(event: RoundOpened) -> None:
        board = controller.board
        if board is not None:
            board.opened = True

    def _on_alert(event: AlertRaised) -> None:
        # ingest only lands on a bound round; serve-mode alerts arriving
        # between rounds are queued by the driver, not published early
        board = controller.board
        if board is not None and event.alert is not None:
            board.ingest.append(event.alert)

    bus.subscribe(RoundOpened, _on_opened)
    bus.subscribe(AlertRaised, _on_alert)
    return controller
