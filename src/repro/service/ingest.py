"""Continuous alert sources for ``repro serve``.

A *source* yields batches of ``(Alert, magnitude)`` pairs — one batch
per ingest tick — through its :meth:`batches` iterator.  The serve
driver feeds every pair through the bounded ingest queue (shedding
under backpressure, see :class:`~repro.service.server.SheriffService`)
and the round scheduler drains whatever is queued when a round fires,
so a batch is *not* guaranteed to be planned as one round — that
coupling is exactly what the always-on core removes.

Two sources ship:

* :class:`ReplayAlertSource` — seeded synthetic replay against a live
  cluster via :func:`~repro.sim.scenario.inject_fraction_alerts`; the
  sampling follows the cluster's *current* placement, so replayed load
  reacts to the migrations the service performs (a closed loop, like
  the paper's monitors would);
* :class:`JsonlAlertSource` — externally produced alerts from a JSONL
  file or stdin, one object per line::

      {"rack": 3, "kind": "server", "host": 17, "vm": 204,
       "magnitude": 0.91, "time": 12}

  Consecutive rows sharing a ``time`` value form one batch; rows
  without ``time`` are one batch each.  Unknown keys are rejected so
  schema typos fail loudly.
"""

from __future__ import annotations

import json
from typing import IO, Iterator, List, Optional, Tuple, Union

from repro.alerts.alert import Alert, AlertKind
from repro.errors import ConfigurationError

__all__ = ["AlertBatch", "ReplayAlertSource", "JsonlAlertSource"]

AlertBatch = List[Tuple[Alert, float]]

_ALERT_KEYS = frozenset(
    {"rack", "kind", "magnitude", "host", "switch", "vm", "time"}
)


class ReplayAlertSource:
    """Seeded synthetic alert replay (the serve-mode default).

    Parameters
    ----------
    cluster:
        The live cluster the service manages; sampling reads its current
        placement each tick.
    fraction:
        Per-tick alerting VM fraction (Sec. VI-B rule).
    rounds:
        Number of ticks to replay; ``0`` replays forever (stop the
        service with SIGTERM / ``max_rounds``).
    seed:
        Base seed; tick ``t`` uses ``seed + t`` like the batch CLI, so a
        serve run and a ``balance`` run see the same alert streams.
    """

    def __init__(
        self,
        cluster,
        *,
        fraction: float = 0.05,
        rounds: int = 0,
        seed: int = 2015,
        start_time: int = 0,
    ) -> None:
        if rounds < 0:
            raise ConfigurationError(f"rounds must be >= 0, got {rounds}")
        self.cluster = cluster
        self.fraction = fraction
        self.rounds = rounds
        self.seed = seed
        self.start_time = start_time

    def batches(self) -> Iterator[AlertBatch]:
        from repro.sim.scenario import inject_fraction_alerts

        t = self.start_time
        while self.rounds == 0 or t < self.start_time + self.rounds:
            alerts, vm_alerts = inject_fraction_alerts(
                self.cluster, self.fraction, time=t, seed=self.seed + t
            )
            yield [
                (a, vm_alerts.get(a.vm, float(a.magnitude))) for a in alerts
            ]
            t += 1


class JsonlAlertSource:
    """Alerts parsed from a JSONL stream (path, ``"-"`` for stdin, or an
    open file object).  Ends at EOF; a malformed line raises
    :class:`~repro.errors.ConfigurationError` naming the line number."""

    def __init__(self, source: Union[str, IO[str]]) -> None:
        self._path: Optional[str] = None
        self._fh: Optional[IO[str]] = None
        if isinstance(source, str):
            self._path = source
        else:
            self._fh = source

    def _open(self) -> IO[str]:
        if self._fh is not None:
            return self._fh
        if self._path == "-":
            import sys

            self._fh = sys.stdin
        else:
            assert self._path is not None
            self._fh = open(self._path, "r")
        return self._fh

    def close(self) -> None:
        """Close the underlying stream (unblocks a pending read)."""
        if self._fh is not None and self._path not in (None, "-"):
            try:
                self._fh.close()
            except OSError:
                pass

    @staticmethod
    def parse_line(line: str, lineno: int) -> Tuple[Alert, float, Optional[int]]:
        """One JSONL row → ``(alert, magnitude, time)``."""
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"line {lineno}: not JSON: {exc}") from None
        if not isinstance(row, dict):
            raise ConfigurationError(f"line {lineno}: expected an object")
        unknown = sorted(set(row) - _ALERT_KEYS)
        if unknown:
            raise ConfigurationError(
                f"line {lineno}: unknown key(s): {', '.join(unknown)}"
            )
        try:
            kind = AlertKind(row.get("kind", "server"))
        except ValueError:
            raise ConfigurationError(
                f"line {lineno}: unknown alert kind {row.get('kind')!r}"
            ) from None
        if "rack" not in row:
            raise ConfigurationError(f"line {lineno}: missing 'rack'")
        magnitude = float(row.get("magnitude", 1.0))
        alert = Alert(
            kind=kind,
            rack=int(row["rack"]),
            magnitude=magnitude,
            host=row.get("host"),
            switch=row.get("switch"),
            vm=row.get("vm"),
            time=int(row.get("time", 0)),
        )
        t = row.get("time")
        return alert, magnitude, (int(t) if t is not None else None)

    def batches(self) -> Iterator[AlertBatch]:
        fh = self._open()
        batch: AlertBatch = []
        batch_time: Optional[int] = None
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                continue
            alert, magnitude, t = self.parse_line(line, lineno)
            if t is None:
                # untimed rows never coalesce
                if batch:
                    yield batch
                    batch, batch_time = [], None
                yield [(alert, magnitude)]
                continue
            if batch and t != batch_time:
                yield batch
                batch = []
            batch_time = t
            batch.append((alert, magnitude))
        if batch:
            yield batch
