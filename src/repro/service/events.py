"""Typed service events — the vocabulary of the Sheriff event bus.

These are *control-plane* events: they announce what the always-on
service core is doing (a round opened, an alert arrived, a rack was
planned, migrations committed) so that schedulers, the serve-mode
driver, metrics bridges and tests can react without reaching into the
engine.  They are distinct from the *observability* trace events in
:mod:`repro.obs.events`, which record fine-grained per-decision facts
for offline analysis; a service event typically summarizes many trace
events (one :class:`RackPlanned` per shim vs one ``PrioritySelected``
per Alg. 2 invocation).

All events are frozen dataclasses: once published they are immutable,
so every subscriber sees the same value regardless of dispatch order.
The full taxonomy (fields, publisher, ordering guarantees) is
documented in ``docs/service.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import List, Optional, Tuple

from repro.alerts.alert import Alert

__all__ = [
    "ServiceEvent",
    "RoundOpened",
    "AlertRaised",
    "AlertShed",
    "FaultInjected",
    "RackPlanned",
    "RequestSent",
    "MigrationCommitted",
    "RoundClosed",
    "ServiceStateChanged",
    "SERVICE_EVENT_TYPES",
]


@dataclass(frozen=True)
class ServiceEvent:
    """Base class of every bus event.

    ``round`` is the management-round index the event belongs to;
    ``None`` means the event happened outside any round (service
    lifecycle, shed decisions while the planner is busy).
    """

    round: Optional[int] = None

    @property
    def kind(self) -> str:
        """Stable event-type name (the class name)."""
        return type(self).__name__

    def as_dict(self) -> dict:
        """JSON-ready representation: ``{"event": kind, ...fields}``."""
        out = {"event": self.kind}
        for f in fields(self):
            v = getattr(self, f.name)
            if isinstance(v, Alert):
                v = {
                    "kind": v.kind.name,
                    "rack": v.rack,
                    "magnitude": v.magnitude,
                    "host": v.host,
                    "switch": v.switch,
                    "vm": v.vm,
                }
            if isinstance(v, tuple):
                v = list(v)
            out[f.name] = v
        return out


@dataclass(frozen=True)
class RoundOpened(ServiceEvent):
    """The scheduler opened a management round (ingest window closed)."""

    alerts: int = 0


@dataclass(frozen=True)
class AlertRaised(ServiceEvent):
    """One ALERT message entered the service core.

    Published by the round scheduler (batch mode) or the serve-mode
    ingest loop (continuous mode); the blackboard controller's ingest
    subscriber appends it to the current round's working set.
    """

    rack: int = -1
    alert_kind: str = ""
    magnitude: float = 0.0
    alert: Optional[Alert] = None
    """The full message; carried so knowledge sources need no lookup."""


@dataclass(frozen=True)
class AlertShed(ServiceEvent):
    """Backpressure: an alert was dropped because the ingest queue was
    full (see ``ServeSettings.shed_policy``)."""

    rack: int = -1
    policy: str = ""
    queue_depth: int = 0


@dataclass(frozen=True)
class FaultInjected(ServiceEvent):
    """The fault layer fired at the top of a round."""

    injected: int = 0
    degraded: bool = False


@dataclass(frozen=True)
class RackPlanned(ServiceEvent):
    """One shim finished Alg. 1 for the round (plan + execute)."""

    rack: int = -1
    alerts_processed: int = 0
    selected: Tuple[int, ...] = ()
    requested: int = 0
    acked: int = 0
    rejected: int = 0


@dataclass(frozen=True)
class RequestSent(ServiceEvent):
    """A shim's REQUEST batch left for the one-hop neighbor racks.

    Aggregated per rack: ``count`` REQUEST messages were issued by
    VMMIGRATION (the per-message story lives in the obs trace as
    individual ``RequestSent`` trace events)."""

    rack: int = -1
    count: int = 0


@dataclass(frozen=True)
class MigrationCommitted(ServiceEvent):
    """The round's FCFS commit applied one reserved migration."""

    vm: int = -1
    dst_host: int = -1


@dataclass(frozen=True)
class RoundClosed(ServiceEvent):
    """A management round fully completed (summary recorded)."""

    alerts: int = 0
    migrations: int = 0
    total_cost: float = 0.0
    degraded: bool = False


@dataclass(frozen=True)
class ServiceStateChanged(ServiceEvent):
    """The serve-mode driver changed lifecycle state
    (``starting`` → ``serving`` → ``draining`` → ``stopped``)."""

    state: str = ""


SERVICE_EVENT_TYPES: List[type] = [
    RoundOpened,
    AlertRaised,
    AlertShed,
    FaultInjected,
    RackPlanned,
    RequestSent,
    MigrationCommitted,
    RoundClosed,
    ServiceStateChanged,
]
