"""The always-on Sheriff service: asyncio driver behind ``repro serve``.

:class:`SheriffService` turns the batch engine into a long-running
process: an ingest task pulls ``(Alert, magnitude)`` pairs from an
alert source (:mod:`repro.service.ingest`) into a **bounded queue**,
and a planner loop drains whatever is queued every ``round_interval``
seconds into one :meth:`SheriffSimulation.run_round` call — the same
seeded blackboard cascade batch mode uses, so the decision logic is
literally shared.

Backpressure: when ingest outruns planning and the queue hits
``queue_limit``, the shed policy decides who loses — ``drop-oldest``
(stale alerts give way, the default: a superseded overload report is
worthless), ``drop-newest`` (protect the backlog), or ``block`` (stall
ingest; only sensible for replay sources).  Every shed increments
``sheriff_ingest_shed_total`` and publishes an
:class:`~repro.service.events.AlertShed` bus event.

Operational surface (both endpoints answered by a deliberately tiny
HTTP/1.0 responder — no framework dependency):

* ``GET /healthz`` — JSON lifecycle/queue snapshot;
* ``GET /metrics`` — the registry in Prometheus text exposition
  (:func:`repro.obs.export.prometheus_text`), scrapeable live.

Shutdown: SIGTERM/SIGINT request a *graceful drain* — ingest stops,
queued alerts are planned in final rounds (bounded by
``drain_timeout``), the HTTP server closes, and :meth:`run` returns a
final report.  The rounds themselves run inline on the event loop (a
round at service scale is milliseconds; this keeps every metrics/trace
write single-threaded) — only the source's potentially blocking
``next()`` runs in the executor.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.alerts.alert import Alert
from repro.errors import ConfigurationError
from repro.service.events import (
    AlertShed,
    RoundClosed,
    ServiceStateChanged,
)

__all__ = ["ServeSettings", "SheriffService"]

SHED_POLICIES = ("drop-oldest", "drop-newest", "block")


@dataclass
class ServeSettings:
    """Knobs of the always-on driver (the CLI's ``serve`` flags).

    Parameters
    ----------
    host, port:
        HTTP bind address; port ``0`` picks a free port (read it back
        from :attr:`SheriffService.bound_port` or the ready line).
    round_interval:
        Seconds between planner ticks; each tick drains the queue into
        one management round (empty queue = no round).
    queue_limit:
        Ingest queue capacity in alerts; the shed policy applies beyond.
    shed_policy:
        ``drop-oldest`` | ``drop-newest`` | ``block`` (see module docs).
    ingest_interval:
        Seconds the ingest task sleeps between source batches (``0`` =
        as fast as the source produces; use it to pace a replay).
    max_rounds:
        Hard stop after this many management rounds (safety valve for
        smoke tests and bounded runs); ``None`` = run until the source
        ends or a drain is requested.
    drain_timeout:
        Seconds a graceful drain may keep planning queued alerts before
        dropping the remainder.
    """

    host: str = "127.0.0.1"
    port: int = 0
    round_interval: float = 0.05
    queue_limit: int = 1024
    shed_policy: str = "drop-oldest"
    ingest_interval: float = 0.0
    max_rounds: Optional[int] = None
    drain_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.shed_policy not in SHED_POLICIES:
            raise ConfigurationError(
                f"shed_policy must be one of {', '.join(SHED_POLICIES)}, "
                f"got {self.shed_policy!r}"
            )
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.round_interval < 0 or self.ingest_interval < 0:
            raise ConfigurationError("intervals must be >= 0")
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be >= 1, got {self.max_rounds}"
            )


class SheriffService:
    """One simulation + one alert source, served until drained.

    The service publishes its lifecycle on the simulation's bus
    (:class:`ServiceStateChanged`) and tracks each round's outcome by
    subscribing to the engine's :class:`RoundClosed` events — it never
    reaches into engine internals.
    """

    def __init__(self, sim, source, settings: Optional[ServeSettings] = None) -> None:
        self.sim = sim
        self.source = source
        self.settings = settings if settings is not None else ServeSettings()
        self.metrics = sim.metrics
        self.state = "starting"
        self.bound_port: Optional[int] = None
        self.rounds_run = 0
        self.alerts_ingested = 0
        self.alerts_shed = 0
        self.alerts_planned = 0
        self.last_round: Optional[Dict[str, object]] = None
        self._queue: Deque[Tuple[Alert, float]] = deque()
        self._drain_requested = False
        self._ingest_done = False
        self.sim.bus.subscribe(RoundClosed, self._on_round_closed)

    # ------------------------------------------------------------------ #
    # backpressure
    # ------------------------------------------------------------------ #
    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def offer(self, alert: Alert, magnitude: float) -> bool:
        """Enqueue one alert, applying the shed policy when full.

        Returns ``True`` when the alert was enqueued.  The ``block``
        policy is enforced by the async ingest loop (which waits for
        space); a direct ``offer`` under ``block`` on a full queue
        sheds the newcomer rather than deadlocking.
        """
        s = self.settings
        if len(self._queue) >= s.queue_limit:
            if s.shed_policy == "drop-oldest":
                victim, _ = self._queue.popleft()
                self._shed(victim)
            else:  # drop-newest, or block called synchronously on full
                self._shed(alert)
                return False
        self._queue.append((alert, magnitude))
        self.metrics.gauge("sheriff_ingest_queue_depth").set(len(self._queue))
        return True

    def _shed(self, alert: Alert) -> None:
        self.alerts_shed += 1
        self.metrics.counter("sheriff_ingest_shed_total").inc()
        self.sim.bus.publish(
            AlertShed(
                rack=alert.rack,
                policy=self.settings.shed_policy,
                queue_depth=len(self._queue),
            )
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def request_drain(self) -> None:
        """Ask for a graceful shutdown (idempotent; signal-handler safe)."""
        if not self._drain_requested:
            self._drain_requested = True
            self._set_state("draining")
            close = getattr(self.source, "close", None)
            if close is not None:
                close()

    def _set_state(self, state: str) -> None:
        self.state = state
        self.sim.bus.publish(ServiceStateChanged(state=state))

    def _on_round_closed(self, event: RoundClosed) -> None:
        self.last_round = {
            "round": event.round,
            "alerts": event.alerts,
            "migrations": event.migrations,
            "total_cost": event.total_cost,
            "degraded": event.degraded,
        }

    # ------------------------------------------------------------------ #
    # ingest task
    # ------------------------------------------------------------------ #
    async def _ingest(self) -> None:
        loop = asyncio.get_running_loop()
        batches = iter(self.source.batches())

        def next_batch():
            try:
                return next(batches)
            except StopIteration:
                return None

        try:
            while not self._drain_requested:
                batch = await loop.run_in_executor(None, next_batch)
                if batch is None:
                    break
                for alert, magnitude in batch:
                    if self._drain_requested:
                        break
                    if self.settings.shed_policy == "block":
                        while (
                            len(self._queue) >= self.settings.queue_limit
                            and not self._drain_requested
                        ):
                            await asyncio.sleep(self.settings.round_interval / 4 or 0.001)
                    self.alerts_ingested += 1
                    self.metrics.counter("sheriff_ingest_alerts_total").inc()
                    self.offer(alert, magnitude)
                if self.settings.ingest_interval:
                    await asyncio.sleep(self.settings.ingest_interval)
                else:
                    await asyncio.sleep(0)  # yield to the planner loop
        finally:
            self._ingest_done = True

    # ------------------------------------------------------------------ #
    # planner loop
    # ------------------------------------------------------------------ #
    def _drain_batch(self) -> Tuple[List[Alert], Dict[int, float]]:
        alerts: List[Alert] = []
        vm_alerts: Dict[int, float] = {}
        while self._queue:
            alert, magnitude = self._queue.popleft()
            alerts.append(alert)
            if alert.vm is not None:
                vm_alerts[alert.vm] = magnitude
        self.metrics.gauge("sheriff_ingest_queue_depth").set(0)
        return alerts, vm_alerts

    def _run_one_round(self) -> None:
        alerts, vm_alerts = self._drain_batch()
        self.alerts_planned += len(alerts)
        self.sim.run_round(alerts, vm_alerts)
        self.rounds_run += 1
        self.metrics.counter("sheriff_serve_rounds_total").inc()

    def _should_stop(self) -> bool:
        if self._drain_requested:
            return True
        if self._ingest_done and not self._queue:
            return True
        s = self.settings
        return s.max_rounds is not None and self.rounds_run >= s.max_rounds

    # ------------------------------------------------------------------ #
    # HTTP surface
    # ------------------------------------------------------------------ #
    def healthz(self) -> Dict[str, object]:
        """The ``/healthz`` payload (also usable in-process)."""
        return {
            "status": self.state,
            "rounds": self.rounds_run,
            "queue_depth": len(self._queue),
            "queue_limit": self.settings.queue_limit,
            "shed_policy": self.settings.shed_policy,
            "ingested": self.alerts_ingested,
            "planned": self.alerts_planned,
            "shed": self.alerts_shed,
            "draining": self._drain_requested,
            "last_round": self.last_round,
        }

    async def _handle_http(self, reader, writer) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
            while True:  # drain headers
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            if path == "/healthz":
                body = json.dumps(self.healthz(), sort_keys=True)
                status, ctype = "200 OK", "application/json"
            elif path == "/metrics":
                from repro.obs.export import prometheus_text

                body = prometheus_text(self.metrics)
                status, ctype = "200 OK", "text/plain; version=0.0.4"
            else:
                body = json.dumps({"error": "not found"})
                status, ctype = "404 Not Found", "application/json"
            payload = body.encode()
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode()
                + payload
            )
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------ #
    async def run(self) -> Dict[str, object]:
        """Serve until the source ends, ``max_rounds``, or a drain.

        Returns the final report (also what the CLI prints on exit).
        """
        loop = asyncio.get_running_loop()
        server = await asyncio.start_server(
            self._handle_http, self.settings.host, self.settings.port
        )
        self.bound_port = server.sockets[0].getsockname()[1]
        self._install_signal_handlers(loop)
        self._set_state("serving")
        ingest_task = asyncio.create_task(self._ingest())
        try:
            while not self._should_stop():
                await asyncio.sleep(self.settings.round_interval)
                if self._queue:
                    self._run_one_round()
            # graceful drain: plan what is still queued, bounded in time
            deadline = loop.time() + self.settings.drain_timeout
            while self._queue and loop.time() < deadline:
                self._run_one_round()
                await asyncio.sleep(0)
            dropped = len(self._queue)
            self._queue.clear()
        finally:
            ingest_task.cancel()
            try:
                await ingest_task
            except asyncio.CancelledError:
                pass
            server.close()
            await server.wait_closed()
            self._remove_signal_handlers(loop)
            self.sim.close()
            self._set_state("stopped")
        return {
            "rounds": self.rounds_run,
            "ingested": self.alerts_ingested,
            "planned": self.alerts_planned,
            "shed": self.alerts_shed,
            "dropped_at_drain": dropped,
            "migrations": sum(s.migrations for s in self.sim.history),
            "total_cost": sum(s.total_cost for s in self.sim.history),
            "clean_drain": dropped == 0,
        }

    def _install_signal_handlers(self, loop) -> None:
        import signal

        self._handled_signals = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_drain)
                self._handled_signals.append(sig)
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # non-main thread or unsupported platform

    def _remove_signal_handlers(self, loop) -> None:
        for sig in getattr(self, "_handled_signals", []):
            try:
                loop.remove_signal_handler(sig)
            except (NotImplementedError, ValueError, RuntimeError):
                pass
