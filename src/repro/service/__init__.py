"""The event-driven service core (see ``docs/service.md``).

* :mod:`repro.service.events` — typed bus events (``AlertRaised``,
  ``RackPlanned``, ``RequestSent``, ``MigrationCommitted``,
  ``RoundClosed``, ``FaultInjected``, …);
* :mod:`repro.service.bus` — the deterministic in-process
  :class:`EventBus` (priority dispatch, run-to-completion);
* :mod:`repro.service.blackboard` — :class:`BlackboardController` and
  :class:`KnowledgeSource`, the prioritized-contributor scheduler;
* :mod:`repro.service.round` — the management round expressed as
  knowledge sources over a :class:`RoundBlackboard` (what
  ``SheriffSimulation.run_round`` drives);
* :mod:`repro.service.ingest` — continuous alert sources for serve
  mode (seeded trace replay, JSONL streams);
* :mod:`repro.service.server` — the asyncio always-on driver behind
  ``repro serve`` (bounded-queue backpressure, ``/healthz`` +
  ``/metrics``, graceful drain).

Re-exports resolve lazily (PEP 562) so that ``repro.sim.engine`` can
import :mod:`repro.service.round` without dragging in the asyncio
server — which itself imports the engine — keeping the import graph
cycle-free (``make lint`` checks this).
"""

from typing import TYPE_CHECKING

_LAZY_EXPORTS = {
    "ServiceEvent": "repro.service.events",
    "RoundOpened": "repro.service.events",
    "AlertRaised": "repro.service.events",
    "AlertShed": "repro.service.events",
    "FaultInjected": "repro.service.events",
    "RackPlanned": "repro.service.events",
    "RequestSent": "repro.service.events",
    "MigrationCommitted": "repro.service.events",
    "RoundClosed": "repro.service.events",
    "ServiceStateChanged": "repro.service.events",
    "SERVICE_EVENT_TYPES": "repro.service.events",
    "EventBus": "repro.service.bus",
    "Subscription": "repro.service.bus",
    "KnowledgeSource": "repro.service.blackboard",
    "FunctionSource": "repro.service.blackboard",
    "BlackboardController": "repro.service.blackboard",
    "RoundBlackboard": "repro.service.round",
    "ROUND_KNOWLEDGE_SOURCES": "repro.service.round",
    "build_round_controller": "repro.service.round",
    "ReplayAlertSource": "repro.service.ingest",
    "JsonlAlertSource": "repro.service.ingest",
    "ServeSettings": "repro.service.server",
    "SheriffService": "repro.service.server",
}

__all__ = sorted(_LAZY_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static names for type checkers
    from repro.service.blackboard import (
        BlackboardController,
        FunctionSource,
        KnowledgeSource,
    )
    from repro.service.bus import EventBus, Subscription
    from repro.service.events import (
        SERVICE_EVENT_TYPES,
        AlertRaised,
        AlertShed,
        FaultInjected,
        MigrationCommitted,
        RackPlanned,
        RequestSent,
        RoundClosed,
        RoundOpened,
        ServiceEvent,
        ServiceStateChanged,
    )
    from repro.service.ingest import JsonlAlertSource, ReplayAlertSource
    from repro.service.round import (
        ROUND_KNOWLEDGE_SOURCES,
        RoundBlackboard,
        build_round_controller,
    )
    from repro.service.server import ServeSettings, SheriffService


def __getattr__(name: str):
    module = _LAZY_EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.service' has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
