"""Plain-text series/table rendering for benchmark output.

Every figure benchmark prints the series the paper plots, in a stable
aligned format, so ``pytest benchmarks/ --benchmark-only`` output can be
compared against the published curves by eye and EXPERIMENTS.md can quote
it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Series", "format_series", "format_table"]

Number = Union[int, float]


@dataclass(frozen=True)
class Series:
    """One named curve: x values and y values of equal length."""

    name: str
    x: Sequence[Number]
    y: Sequence[Number]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ConfigurationError(
                f"series {self.name!r}: {len(self.x)} x vs {len(self.y)} y values"
            )


def _fmt(v, width: int = 10) -> str:
    if isinstance(v, str):
        return f"{v:>{width}s}"
    if isinstance(v, (int, np.integer)):
        return f"{v:>{width}d}"
    if abs(v) >= 1e5 or (abs(v) > 0 and abs(v) < 1e-3):
        return f"{v:>{width}.3e}"
    return f"{v:>{width}.3f}"


def format_series(title: str, series: Sequence[Series], x_label: str = "x") -> str:
    """Render aligned columns: x plus one column per series."""
    if not series:
        raise ConfigurationError("need at least one series")
    xs = [tuple(s.x) for s in series]
    if len(set(xs)) != 1:
        raise ConfigurationError("all series must share the same x values")
    lines = [title]
    header = f"{x_label:>10s}" + "".join(f"{s.name:>16s}" for s in series)
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(series[0].x):
        row = _fmt(x) + "".join(_fmt(s.y[i], 16) for s in series)
        lines.append(row)
    return "\n".join(lines)


def format_table(title: str, rows: List[Dict[str, Number]]) -> str:
    """Render a list of uniform dicts as an aligned table."""
    if not rows:
        raise ConfigurationError("need at least one row")
    cols = list(rows[0].keys())
    for r in rows:
        if list(r.keys()) != cols:
            raise ConfigurationError("all rows must share the same columns")
    lines = [title]
    header = "".join(f"{c:>16s}" for c in cols)
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        lines.append("".join(_fmt(r[c], 16) for c in cols))
    return "\n".join(lines)
