"""Benchmark reporting helpers (series tables, figure-style output)."""

from repro.analysis.tables import Series, format_table, format_series

__all__ = ["Series", "format_table", "format_series"]
