"""SLO-violation-minutes accounting.

The accountant charges each VM's error budget from three sources, all
expressed in the same unit — *violation-minutes*, minutes of SLO-breaking
service weighted by how much traffic the VM was serving:

``overload``
    Every round a VM sits on a host whose utilisation exceeds the SLO
    overload threshold, it is charged a fraction of the round scaled by
    how far past the threshold the host ran.
``downtime``
    A live migration's stop-and-copy window (the six-stage pre-copy
    model's final blackout, :func:`repro.costs.precopy.precopy_timeline`)
    multiplied by the VM's request rate: seconds of blackout × requests
    per second ÷ 60.  A VM that serves nothing is never charged.
``stretch``
    After a placement change, any lengthening of the VM's dependency
    paths (rack-distance deltas to its ``G_d`` neighbours) is charged as
    a fixed fraction of a round per added hop.

Every charge emits a :class:`~repro.obs.events.SloViolation` trace event
(stamped with lifecycle trace ids by the tracer) and increments
``sheriff_slo_violation_minutes_total{tenant,source}``; the synthetic
request latency implied by the charge is observed into
``sheriff_slo_request_latency{tenant}``.  Consecutive violating rounds of
one VM form a *violation episode*; episode lengths feed the p99 reported
by ``repro trace summarize`` and ``repro slo report``.  When a per-class
error budget is configured, the first crossing emits
:class:`~repro.obs.events.SloBudgetExhausted` (once per class).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Set

import numpy as np

from repro.obs.events import SloBudgetExhausted, SloViolation
from repro.slo.model import SloModel, TENANT_CLASSES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster
    from repro.costs.precopy import MigrationTimeline

__all__ = ["SloAccountant", "VIOLATION_SOURCES"]

VIOLATION_SOURCES = ("overload", "downtime", "stretch")

# one extra rack-level hop on a dependency path costs this fraction of a
# round in violation-minutes
_STRETCH_MINUTES_PER_HOP = 0.1

# synthetic latency inflation: ms per hop of added dependency distance
_STRETCH_LATENCY_MS_PER_HOP = 5.0


class SloAccountant:
    """Charges SLO-violation-minutes and keeps the per-tenant ledger.

    Parameters
    ----------
    model:
        The fleet's :class:`~repro.slo.model.SloModel`.
    cluster:
        Live cluster handle — placement is read at charge time so the
        ledger always reflects the post-commit world.
    rack_distances:
        ``(num_racks, num_racks)`` hop-distance matrix (from
        :meth:`repro.costs.model.CostModel.rack_distances`).
    timing:
        :class:`~repro.sim.inflight.MigrationTiming`-compatible object
        used to derive a pre-copy timeline when the engine commits
        instantly (duck-typed: only ``rounds_for`` is called).
    metrics / tracer:
        Observability sinks; either may be ``None`` (ledger-only mode).
    round_minutes:
        Wall-clock minutes one management round represents.
    overload_threshold:
        Host utilisation above which resident VMs accrue overload
        minutes.
    budget_minutes:
        Per-tenant-class error budget; ``0`` disables budget tracking.
    """

    def __init__(
        self,
        model: SloModel,
        cluster: "Cluster",
        *,
        rack_distances: np.ndarray,
        timing=None,
        metrics=None,
        tracer=None,
        round_minutes: float = 1.0,
        overload_threshold: float = 0.9,
        budget_minutes: float = 0.0,
    ) -> None:
        self.model = model
        self.cluster = cluster
        self.rack_distances = rack_distances
        self.timing = timing
        self.metrics = metrics
        self.tracer = tracer
        self.round_minutes = float(round_minutes)
        self.overload_threshold = float(overload_threshold)
        self.budget_minutes = float(budget_minutes)

        self.total_minutes: float = 0.0
        self.by_class: Dict[str, float] = {t: 0.0 for t in TENANT_CLASSES}
        self.by_source: Dict[str, float] = {s: 0.0 for s in VIOLATION_SOURCES}
        self._budget_spent: Set[str] = set()
        self._timelines: Dict[int, "MigrationTimeline"] = {}
        # episode tracking: vm -> consecutive violating rounds so far
        self._open_episodes: Dict[int, int] = {}
        self._violated_this_round: Set[int] = set()
        self._episode_lengths: List[int] = []

    # ------------------------------------------------------------------ #
    # charge sites
    # ------------------------------------------------------------------ #
    def charge_downtime(
        self,
        vm: int,
        dst_host: int,
        timeline: Optional["MigrationTimeline"] = None,
    ) -> float:
        """Charge one migration's stop-and-copy blackout to *vm*.

        ``timeline`` defaults to the pre-copy timeline implied by the
        accountant's timing model and the VM's memory footprint (memoized
        per capacity).  Returns the minutes charged (0 for VMs with zero
        request rate).
        """
        slo = self.model.slo_for(vm)
        if slo.request_rate <= 0.0:
            return 0.0
        if timeline is None:
            timeline = self._timeline_for(vm)
            if timeline is None:
                return 0.0
        minutes = timeline.downtime * slo.request_rate / 60.0
        latency_ms = slo.latency_target_ms + timeline.downtime * 1000.0
        self._charge(vm, slo.tenant_class, "downtime", minutes, latency_ms, dst_host)
        return minutes

    def charge_stretch(self, vm: int, old_host: int, new_host: int) -> float:
        """Charge any dependency-path lengthening caused by a move.

        Sums the positive rack-distance deltas from *vm*'s new rack to
        each ``G_d`` neighbour's rack, relative to the old rack.  Paths
        that got shorter earn nothing back — the SLO ledger is a cost
        ledger, not a score.
        """
        nbrs = self.cluster.dependencies.neighbors(vm)
        if not nbrs:
            return 0.0
        pl = self.cluster.placement
        dist = self.rack_distances
        old_rack = int(pl.host_rack[old_host])
        new_rack = int(pl.host_rack[new_host])
        if old_rack == new_rack:
            return 0.0
        added = 0.0
        for nbr in sorted(nbrs):
            nbr_rack = int(pl.host_rack[pl.vm_host[nbr]])
            delta = float(dist[new_rack, nbr_rack]) - float(dist[old_rack, nbr_rack])
            if delta > 0.0:
                added += delta
        if added <= 0.0:
            return 0.0
        slo = self.model.slo_for(vm)
        minutes = _STRETCH_MINUTES_PER_HOP * self.round_minutes * added
        latency_ms = slo.latency_target_ms + _STRETCH_LATENCY_MS_PER_HOP * added
        self._charge(vm, slo.tenant_class, "stretch", minutes, latency_ms, new_host)
        return minutes

    def charge_round(
        self, now: int, host_load: Optional[np.ndarray] = None
    ) -> float:
        """Close out one round: overload charges plus episode bookkeeping.

        ``host_load`` is the per-host utilisation vector the engine ran
        the round against (``None`` when the caller drives load
        externally — only episode bookkeeping happens then).  Returns the
        overload minutes charged this round.
        """
        charged = 0.0
        if host_load is not None:
            pl = self.cluster.placement
            load = np.asarray(host_load, dtype=np.float64)
            thr = self.overload_threshold
            hot = np.nonzero(load > thr)[0]
            if hot.size:
                span = max(1.0 - thr, 1e-9)
                vm_hosts = pl.vm_host
                for host in hot.tolist():
                    excess = min(1.0, (float(load[host]) - thr) / span)
                    minutes = self.round_minutes * excess
                    for vm in np.nonzero(vm_hosts == host)[0].tolist():
                        slo = self.model.slo_for(vm)
                        latency_ms = slo.latency_target_ms * (1.0 + excess)
                        self._charge(
                            vm, slo.tenant_class, "overload", minutes,
                            latency_ms, host,
                        )
                        charged += minutes
        self._close_round_episodes()
        return charged

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _timeline_for(self, vm: int) -> Optional["MigrationTimeline"]:
        if self.timing is None:
            return None
        capacity = int(self.cluster.placement.vm_capacity[vm])
        tl = self._timelines.get(capacity)
        if tl is None:
            _, tl = self.timing.rounds_for(capacity)
            self._timelines[capacity] = tl
        return tl

    def _charge(
        self,
        vm: int,
        tenant: str,
        source: str,
        minutes: float,
        latency_ms: float,
        host: Optional[int],
    ) -> None:
        if minutes <= 0.0:
            return
        self.total_minutes += minutes
        self.by_class[tenant] = self.by_class.get(tenant, 0.0) + minutes
        self.by_source[source] = self.by_source.get(source, 0.0) + minutes
        self._violated_this_round.add(vm)
        if self.metrics is not None:
            self.metrics.counter(
                "sheriff_slo_violation_minutes_total", tenant=tenant, source=source
            ).inc(minutes)
            self.metrics.histogram(
                "sheriff_slo_request_latency", tenant=tenant
            ).observe(latency_ms)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(
                SloViolation(
                    vm=int(vm), tenant=tenant, source=source,
                    minutes=minutes, host=host,
                )
            )
        self._check_budget(tenant)

    def _check_budget(self, tenant: str) -> None:
        if self.budget_minutes <= 0.0 or tenant in self._budget_spent:
            return
        total = self.by_class.get(tenant, 0.0)
        if total < self.budget_minutes:
            return
        self._budget_spent.add(tenant)
        if self.metrics is not None:
            self.metrics.counter(
                "sheriff_slo_budget_exhausted_total", tenant=tenant
            ).inc()
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(
                SloBudgetExhausted(
                    tenant=tenant,
                    budget_minutes=self.budget_minutes,
                    total_minutes=total,
                )
            )

    def _close_round_episodes(self) -> None:
        violated = self._violated_this_round
        for vm in list(self._open_episodes):
            if vm not in violated:
                self._episode_lengths.append(self._open_episodes.pop(vm))
        for vm in violated:
            self._open_episodes[vm] = self._open_episodes.get(vm, 0) + 1
        violated.clear()

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def episode_lengths(self, include_open: bool = True) -> List[int]:
        """Violation-episode lengths (rounds), closed first."""
        out = list(self._episode_lengths)
        if include_open:
            out.extend(self._open_episodes.values())
        return out

    def episode_quantile(self, q: float) -> float:
        """Interpolated *q*-quantile of episode lengths (0.0 when none)."""
        lengths = sorted(self.episode_lengths())
        if not lengths:
            return 0.0
        pos = q * (len(lengths) - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(lengths) - 1)
        frac = pos - lo
        return lengths[lo] * (1.0 - frac) + lengths[hi] * frac

    def summary(self) -> Dict[str, object]:
        """JSON-ready ledger snapshot (CLI + report surface)."""
        lengths = self.episode_lengths()
        return {
            "total_minutes": self.total_minutes,
            "by_class": dict(self.by_class),
            "by_source": dict(self.by_source),
            "episodes": {
                "count": len(lengths),
                "p50_rounds": self.episode_quantile(0.5),
                "p99_rounds": self.episode_quantile(0.99),
                "max_rounds": float(max(lengths)) if lengths else 0.0,
            },
            "budget_minutes": self.budget_minutes,
            "budget_exhausted": sorted(self._budget_spent),
        }
