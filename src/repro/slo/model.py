"""Per-VM application-facing SLO model.

The paper scores management purely by the Eq. (1) network cost; related
work ("Do Data Center Network Metrics Predict Application-Facing
Performance?") shows that network metrics alone mispredict what
applications feel.  This module derives a *synthetic but deterministic*
application contract for every VM from state the simulator already has —
the workload profile (capacity, value, delay sensitivity) and the
dependency graph ``G_d``:

* **tenant class** — ``"gold"`` / ``"silver"`` / ``"bronze"`` priority
  tiers.  Delay-sensitive VMs are always gold; otherwise the class comes
  from the VM's value weighted by its dependency degree (a high-value hub
  of ``G_d`` fronts more of the application than a leaf).
* **request rate** — synthetic served requests/second, proportional to
  capacity × value (a big, valuable VM serves more traffic).  VMs with
  zero value serve nothing, so they can never accrue downtime damage.
* **latency target** — the class's base budget stretched by the VM's
  dependency degree: every ``G_d`` edge is one more hop a request may
  traverse, so chattier VMs get proportionally looser targets.

Everything is a pure function of the cluster, so the same seed yields the
same SLO book run-to-run — the golden accounting tests pin per-tenant
totals against exactly this derivation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster

__all__ = ["VmSlo", "SloModel", "TENANT_CLASSES"]

TENANT_CLASSES: Tuple[str, ...] = ("gold", "silver", "bronze")
"""Priority tiers, strictest first."""

# class base latency budgets (ms) and request-rate multipliers
_LATENCY_TARGET_MS = {"gold": 50.0, "silver": 150.0, "bronze": 400.0}
_RATE_MULTIPLIER = {"gold": 2.0, "silver": 1.0, "bronze": 0.5}

# requests/second per unit of capacity x value before the class multiplier
_BASE_RATE_PER_CAP_VALUE = 2.0

# value x (1 + degree) score thresholds separating the tiers
_GOLD_SCORE = 4.0
_SILVER_SCORE = 1.5


@dataclass(frozen=True)
class VmSlo:
    """One VM's application contract."""

    vm_id: int
    tenant_class: str
    request_rate: float
    """Synthetic served requests per second (0 = the VM serves nothing)."""
    latency_target_ms: float


class SloModel:
    """The fleet's SLO book: one :class:`VmSlo` per VM."""

    def __init__(self, slos: Dict[int, VmSlo]) -> None:
        self._slos = slos

    @classmethod
    def from_cluster(cls, cluster: "Cluster") -> "SloModel":
        """Derive every VM's contract from the workload profile and G_d."""
        pl = cluster.placement
        deps = cluster.dependencies
        slos: Dict[int, VmSlo] = {}
        for vm in range(pl.num_vms):
            value = float(pl.vm_value[vm])
            capacity = int(pl.vm_capacity[vm])
            degree = len(deps.neighbors(vm))
            score = value * (1.0 + degree)
            if bool(pl.vm_delay_sensitive[vm]) or score >= _GOLD_SCORE:
                tenant = "gold"
            elif score >= _SILVER_SCORE:
                tenant = "silver"
            else:
                tenant = "bronze"
            rate = _BASE_RATE_PER_CAP_VALUE * capacity * value
            rate *= _RATE_MULTIPLIER[tenant]
            latency = _LATENCY_TARGET_MS[tenant] * (1.0 + 0.25 * min(degree, 4))
            slos[vm] = VmSlo(
                vm_id=vm,
                tenant_class=tenant,
                request_rate=rate,
                latency_target_ms=latency,
            )
        return cls(slos)

    def __len__(self) -> int:
        return len(self._slos)

    def __iter__(self) -> Iterator[VmSlo]:
        return iter(self._slos.values())

    def slo_for(self, vm: int) -> VmSlo:
        return self._slos[vm]

    def by_class(self) -> Dict[str, List[int]]:
        """VM ids per tenant class (every class present, possibly empty)."""
        out: Dict[str, List[int]] = {t: [] for t in TENANT_CLASSES}
        for slo in self._slos.values():
            out[slo.tenant_class].append(slo.vm_id)
        return out
