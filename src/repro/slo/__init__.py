"""Application-facing SLO layer: model, accounting, and scoring.

``repro.slo`` turns the simulator's network-side story into an
application-side one:

* :mod:`repro.slo.model` derives a deterministic per-VM SLO contract
  (tenant class, request rate, latency target) from the workload profile
  and the dependency graph ``G_d``;
* :mod:`repro.slo.accounting` charges SLO-violation-minutes from host
  overload, migration downtime and dependency-path stretch, and feeds the
  ``sheriff_slo_*`` metric family plus ``SloViolation`` trace events;
* :mod:`repro.slo.scoring` implements ``SheriffConfig(scoring="slo")`` —
  a migration cost addend pricing predicted SLO damage against Eq. (1).

The whole layer is opt-in: with ``SheriffConfig(slo=False,
scoring="network")`` (the defaults) nothing here is even imported and
every engine output is byte-identical to earlier releases.
"""

from repro.slo.accounting import SloAccountant, VIOLATION_SOURCES
from repro.slo.model import SloModel, TENANT_CLASSES, VmSlo
from repro.slo.scoring import SloScorer

__all__ = [
    "SloAccountant",
    "SloModel",
    "SloScorer",
    "VmSlo",
    "TENANT_CLASSES",
    "VIOLATION_SOURCES",
]
