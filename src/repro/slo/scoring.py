"""SLO-aware migration scoring (``SheriffConfig(scoring="slo")``).

Eq. (1) prices a migration purely by where its bytes travel.  The scorer
adds the *application's* side of the bargain: moving a VM blacks it out
for the stop-and-copy window of its pre-copy timeline, and the damage is
that blackout weighted by the VM's request rate.  Destinations that are
already busy amplify the risk (the VM lands somewhere that may violate
its SLO next round), so the addend couples per-VM damage with per-host
load:

    addend[r, h] = weight * damage[r] * (0.5 + load_frac[h])

Rows with zero request rate contribute nothing — for them the matrix
degenerates to pure Eq. (1) cost and the assignment is unchanged.

The scorer deliberately imports nothing from :mod:`repro.sim` — the
timing object is duck-typed (only ``rounds_for(capacity)`` is called), so
the import-cycle checker stays clean and plan workers can ship the scorer
state to subprocesses without dragging the engine along.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.slo.model import SloModel

__all__ = ["SloScorer"]


class SloScorer:
    """Predicted-SLO-damage addend for migration cost matrices."""

    def __init__(self, model: SloModel, timing, *, weight: float = 1.0) -> None:
        self.model = model
        self.timing = timing
        self.weight = float(weight)
        self._downtime_by_capacity: Dict[int, float] = {}

    def _downtime_for(self, capacity: int) -> float:
        dt = self._downtime_by_capacity.get(capacity)
        if dt is None:
            _, tl = self.timing.rounds_for(capacity)
            dt = float(tl.downtime)
            self._downtime_by_capacity[capacity] = dt
        return dt

    def damage(self, vms: Sequence[int], capacities: Sequence[int]) -> np.ndarray:
        """Per-VM predicted SLO damage in violation-minutes.

        ``damage[i]`` = stop-and-copy seconds for a VM of that capacity ×
        the VM's request rate ÷ 60 — exactly what the accountant would
        charge if the move lands.
        """
        out = np.zeros(len(vms), dtype=np.float64)
        for i, (vm, cap) in enumerate(zip(vms, capacities)):
            rate = self.model.slo_for(int(vm)).request_rate
            if rate > 0.0:
                out[i] = self._downtime_for(int(cap)) * rate / 60.0
        return out

    def addend(self, damage: np.ndarray, load_frac: np.ndarray) -> np.ndarray:
        """The ``(rows, hosts)`` matrix added on top of Eq. (1) + steering."""
        return self.weight * damage[:, None] * (0.5 + load_frac[None, :])
