"""Sheriff: a regional pre-alert management scheme for data center networks.

Full reproduction of Gao, Xu, Wu, Chen (ICPP 2015).  The library is
organized bottom-up:

* :mod:`repro.topology` — Fat-Tree / BCube fabrics and shortest paths;
* :mod:`repro.cluster` — racks, hosts, VMs, placement, dependency graph;
* :mod:`repro.traces` — synthetic ZopleCloud-style traces and workload
  streams;
* :mod:`repro.forecast` — ARIMA, NARNET and dynamic model selection;
* :mod:`repro.alerts` — the pre-alert mechanism (thresholds, monitors,
  QCN-style switch feedback);
* :mod:`repro.costs` — the Eq. (1) migration cost model;
* :mod:`repro.kmedian` — the k-median reduction and Local Search (3+2/p);
* :mod:`repro.migration` — Algs. 1–4 (PRIORITY, KM matching,
  REQUEST/ACK, VMMIGRATION, FLOWREROUTE);
* :mod:`repro.sim` — the round-based simulator with regional,
  centralized-optimal and reactive managers;
* :mod:`repro.obs` — structured tracing, the metrics registry and
  profiling hooks (see ``docs/observability.md``);
* :mod:`repro.slo` — per-VM application-facing SLO model,
  violation-minutes accounting and SLO-aware migration scoring (see
  ``docs/slo.md``);
* :mod:`repro.service` — the event-driven core: typed event bus,
  blackboard round controller and the always-on ``repro serve`` driver
  (see ``docs/service.md``).

The common entry points re-export here, so one import line suffices:

Quickstart::

    from repro import (
        SheriffConfig, SheriffSimulation, build_cluster, build_fattree,
    )
    from repro.sim import inject_fraction_alerts

    cluster = build_cluster(build_fattree(8), seed=1, skew=0.8)
    sim = SheriffSimulation(cluster, SheriffConfig(balance_weight=25.0))
    alerts, magnitudes = inject_fraction_alerts(cluster, 0.05, seed=2)
    summary = sim.run_round(alerts, magnitudes)
    print(summary.migrations, summary.total_cost, summary.timings)

To watch every decision, attach a tracer and read the registry::

    from repro import RecordingTracer, SheriffConfig, SheriffSimulation

    tracer = RecordingTracer()
    sim = SheriffSimulation(cluster, SheriffConfig(tracer=tracer))
    sim.run_round(alerts, magnitudes)
    print(tracer.kinds())              # the round's decision story
    print(sim.metrics.as_dict())       # every counter/gauge/histogram
"""

from typing import TYPE_CHECKING

from repro import errors
from repro.errors import ReproError

__version__ = "1.1.0"

# Facade re-exports resolve lazily (PEP 562): importing ``repro`` alone
# stays cheap, and the cluster/sim modules only load on first attribute
# access — which also keeps this module import-cycle-free.
_LAZY_EXPORTS = {
    "SheriffConfig": "repro.config",
    "SheriffSimulation": "repro.sim.engine",
    "RoundSummary": "repro.sim.engine",
    "run_managed_simulation": "repro.sim.driver",
    "build_cluster": "repro.cluster",
    "build_fattree": "repro.topology",
    "build_bcube": "repro.topology",
    "Tracer": "repro.obs.tracer",
    "NullTracer": "repro.obs.tracer",
    "NULL_TRACER": "repro.obs.tracer",
    "RecordingTracer": "repro.obs.tracer",
    "JsonlTracer": "repro.obs.tracer",
    "MetricsRegistry": "repro.obs.metrics",
    "Profiler": "repro.obs.profiling",
    "FaultKind": "repro.faults",
    "FaultSpec": "repro.faults",
    "FaultSchedule": "repro.faults",
    "ChannelPolicy": "repro.faults",
    "run_chaos_campaign": "repro.faults",
    "EventBus": "repro.service.bus",
    "BlackboardController": "repro.service.blackboard",
    "KnowledgeSource": "repro.service.blackboard",
    "ServiceEvent": "repro.service.events",
    "SERVICE_EVENT_TYPES": "repro.service.events",
    "ServeSettings": "repro.service.server",
    "SheriffService": "repro.service.server",
    "SloModel": "repro.slo",
    "SloAccountant": "repro.slo",
    "SloScorer": "repro.slo",
    "VmSlo": "repro.slo",
}

__all__ = ["errors", "ReproError", "__version__", *_LAZY_EXPORTS]

if TYPE_CHECKING:  # pragma: no cover - static names for type checkers
    from repro.cluster import build_cluster
    from repro.config import SheriffConfig
    from repro.faults import (
        ChannelPolicy,
        FaultKind,
        FaultSchedule,
        FaultSpec,
        run_chaos_campaign,
    )
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profiling import Profiler
    from repro.obs.tracer import (
        NULL_TRACER,
        JsonlTracer,
        NullTracer,
        RecordingTracer,
        Tracer,
    )
    from repro.service.blackboard import BlackboardController, KnowledgeSource
    from repro.service.bus import EventBus
    from repro.service.events import SERVICE_EVENT_TYPES, ServiceEvent
    from repro.service.server import ServeSettings, SheriffService
    from repro.sim.driver import run_managed_simulation
    from repro.sim.engine import RoundSummary, SheriffSimulation
    from repro.slo import SloAccountant, SloModel, SloScorer, VmSlo
    from repro.topology import build_bcube, build_fattree


def __getattr__(name: str):
    module = _LAZY_EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
