"""Sheriff: a regional pre-alert management scheme for data center networks.

Full reproduction of Gao, Xu, Wu, Chen (ICPP 2015).  The library is
organized bottom-up:

* :mod:`repro.topology` — Fat-Tree / BCube fabrics and shortest paths;
* :mod:`repro.cluster` — racks, hosts, VMs, placement, dependency graph;
* :mod:`repro.traces` — synthetic ZopleCloud-style traces and workload
  streams;
* :mod:`repro.forecast` — ARIMA, NARNET and dynamic model selection;
* :mod:`repro.alerts` — the pre-alert mechanism (thresholds, monitors,
  QCN-style switch feedback);
* :mod:`repro.costs` — the Eq. (1) migration cost model;
* :mod:`repro.kmedian` — the k-median reduction and Local Search (3+2/p);
* :mod:`repro.migration` — Algs. 1–4 (PRIORITY, KM matching,
  REQUEST/ACK, VMMIGRATION, FLOWREROUTE);
* :mod:`repro.sim` — the round-based simulator with regional,
  centralized-optimal and reactive managers.

Quickstart::

    from repro.topology import build_fattree
    from repro.cluster import build_cluster
    from repro.sim import SheriffSimulation, inject_fraction_alerts

    cluster = build_cluster(build_fattree(8), seed=1, skew=0.8)
    sim = SheriffSimulation(cluster)
    alerts, magnitudes = inject_fraction_alerts(cluster, 0.05, seed=2)
    summary = sim.run_round(alerts, magnitudes)
    print(summary.migrations, summary.total_cost)
"""

from repro import errors
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["errors", "ReproError", "__version__"]
