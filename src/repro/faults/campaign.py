"""Seeded chaos campaigns: a reproducible robustness experiment in a box.

:func:`run_chaos_campaign` builds a cluster, arms a fault schedule and a
lossy channel, drives the managed simulation for a fixed number of
rounds, and returns one JSON-ready report.  Everything — the workload,
the alert stream, every fault firing, every retry — derives from the
single campaign ``seed``, so two runs with the same arguments produce
*identical* reports (the ``make chaos`` target asserts exactly that with
``cmp``).  Timings are deliberately excluded (``profile=False``): a
report is a statement about behavior, not wall-clock.
"""

from __future__ import annotations

from typing import Optional

from repro.config import SheriffConfig
from repro.errors import ConfigurationError
from repro.faults.channel import ChannelPolicy
from repro.faults.schedule import FaultKind, FaultSchedule, FaultSpec

__all__ = ["default_schedule", "run_chaos_campaign"]


def default_schedule(
    num_hosts: int, num_racks: int, rounds: int, *, seed: int = 0
) -> FaultSchedule:
    """The standard small campaign: one of everything, sized to the cluster.

    A mid-fleet host crashes early (recovering near the end), a mid-fleet
    shim goes dark for two rounds, the first aggregation switch dies and
    comes back, and in-flight migrations abort with small per-round
    probability throughout.
    """
    if num_hosts < 2 or num_racks < 2 or rounds < 6:
        raise ConfigurationError(
            "default_schedule needs >= 2 hosts, >= 2 racks and >= 6 rounds"
        )
    host = num_hosts // 2
    rack = num_racks // 2
    switch = num_racks  # first switch node id (nodes 0..num_racks-1 are ToRs)
    return FaultSchedule(
        [
            FaultSpec(FaultKind.HOST_CRASH, target=host, at_round=2),
            FaultSpec(FaultKind.SHIM_DOWN, target=rack, at_round=3, duration=2),
            FaultSpec(FaultKind.SWITCH_FAIL, target=switch, at_round=4),
            FaultSpec(
                FaultKind.SWITCH_RECOVER, target=switch, at_round=rounds - 2
            ),
            FaultSpec(
                FaultKind.HOST_RECOVER, target=host, at_round=rounds - 1
            ),
            FaultSpec(FaultKind.MIGRATION_ABORT, probability=0.25),
        ],
        seed=seed,
    )


def run_chaos_campaign(
    *,
    topology: str = "fattree",
    size: int = 4,
    rounds: int = 12,
    seed: int = 2015,
    alert_fraction: float = 0.1,
    schedule: Optional[FaultSchedule] = None,
    channel: Optional[ChannelPolicy] = None,
    config: Optional[SheriffConfig] = None,
) -> dict:
    """Run one seeded campaign; return the JSON-ready report.

    Parameters
    ----------
    schedule:
        ``None`` arms :func:`default_schedule` (derived from the cluster
        shape and *seed*).
    channel:
        ``None`` arms a mildly lossy channel (10 % loss, 3 retries).
    config:
        Extra engine knobs; the campaign forces ``profile=False`` and
        installs the schedule/channel, timing and flows on top.
    """
    from repro.cluster import build_cluster
    from repro.sim.engine import SheriffSimulation
    from repro.sim.inflight import MigrationTiming
    from repro.sim.scenario import inject_fraction_alerts
    from repro.topology import build_bcube, build_fattree

    if topology == "fattree":
        topo = build_fattree(size)
        hosts_per_rack = 4
    elif topology == "bcube":
        topo = build_bcube(size)
        hosts_per_rack = max(2, size)
    else:
        raise ConfigurationError(f"unknown topology {topology!r}")
    cluster = build_cluster(
        topo,
        hosts_per_rack=hosts_per_rack,
        fill_fraction=0.5,
        skew=1.1,
        seed=seed,
        delay_sensitive_fraction=0.0,
    )
    pl = cluster.placement
    if schedule is None:
        schedule = default_schedule(
            pl.num_hosts, cluster.num_racks, rounds, seed=seed
        )
    if channel is None:
        channel = ChannelPolicy(loss_probability=0.1, max_retries=3, seed=seed)
    cfg = (config if config is not None else SheriffConfig()).replace(
        fault_schedule=schedule,
        channel_policy=channel,
        migration_timing=MigrationTiming(),
        with_flows=True,
        profile=False,
    )
    sim = SheriffSimulation(cluster, cfg)
    round_rows = []
    for r in range(rounds):
        alerts, vma = inject_fraction_alerts(
            cluster, alert_fraction, time=r, seed=seed + r
        )
        s = sim.run_round(alerts, vma)
        round_rows.append(
            {
                "round": s.round_index,
                "alerts": s.alerts,
                "migrations": s.migrations,
                "requests": s.requests,
                "rejects": s.rejects,
                "faults": s.faults,
                "retries": s.retries,
                "rollbacks": s.rollbacks,
                "degraded": s.degraded,
                "workload_std_after": round(s.workload_std_after, 9),
            }
        )
    assert sim.faults is not None
    sim.close()  # release planner workers / shared segments before reporting
    return {
        "campaign": {
            "topology": topology,
            "size": size,
            "rounds": rounds,
            "seed": seed,
            "alert_fraction": alert_fraction,
            "faults_scheduled": len(schedule),
            "channel_loss": channel.loss_probability,
        },
        "rounds": round_rows,
        "faults_log": sim.faults.log,
        "totals": {
            "faults_injected": sum(r["faults"] for r in round_rows),
            "retries": sum(r["retries"] for r in round_rows),
            "rollbacks": sum(r["rollbacks"] for r in round_rows),
            "degraded_rounds": sum(1 for r in round_rows if r["degraded"]),
            "migrations": sum(r["migrations"] for r in round_rows),
            "vms_lost": len(cluster.placement.lost_vms),
            "final_workload_std": round(cluster.workload_std(), 9),
        },
    }
