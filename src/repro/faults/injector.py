"""Apply scheduled faults to a running simulation.

The injector is the bridge between a passive
:class:`~repro.faults.schedule.FaultSchedule` and the live engine state:
placement, in-flight tracker, flow table, cost model and the per-rack
shim managers.  ``begin_round(now)`` runs at the top of every managed
round (before alert dispatch) and applies whatever the schedule says is
due:

* **HOST_CRASH** — in-flight migrations touching the host are aborted
  (their destination holds released), the host is marked dead, resident
  VMs are emergency-evacuated through the regular VMMIGRATION matching
  against the rack's one-hop region (a private instant receiver commits
  them immediately), and whoever could not be placed is marked *lost* —
  frozen out of planning, capacity still booked on the dead host so
  accounting never drifts.  Lost VMs' flows are withdrawn.
* **HOST_RECOVER** — the host returns; its lost residents resume.
* **SHIM_DOWN / SHIM_UP** — the rack's delegation goes silent: the
  engine skips its planning, and (with an
  :class:`~repro.faults.channel.UnreliableChannel`) REQUESTs addressed
  to it time out into REJECT.  ``duration`` auto-recovers it.
* **MIGRATION_ABORT** — one in-flight migration rolls back its
  reservation (pre-copy failed mid-window).
* **SWITCH_FAIL / SWITCH_RECOVER** — delegated to
  :class:`~repro.sim.failures.FailureInjector` (flow reroute/drop and
  re-admission), then the cost model is rebuilt on the surviving fabric;
  a partitioned fabric keeps the old model and flags the round degraded
  instead of planning over infinities.

Every fired fault is appended to :attr:`FaultInjector.log` (JSON-ready
dicts — the chaos campaign report embeds it verbatim) and counted in the
``sheriff_faults_injected_total`` metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, TopologyError
from repro.faults.schedule import FaultKind, FaultSchedule, FaultSpec
from repro.migration.request import ReceiverRegistry
from repro.migration.vmmigration import vmmigration
from repro.obs.events import FaultInjected, HostCrashed, MigrationAborted
from repro.sim.failures import FailureInjector

__all__ = ["RoundFaults", "FaultInjector"]


@dataclass
class RoundFaults:
    """What the injector did at the top of one round."""

    injected: int = 0
    rollbacks: int = 0
    evacuated: int = 0
    lost: int = 0
    degraded: bool = False
    """A shim is down or a partition blocked cost-model replanning."""
    details: List[dict] = field(default_factory=list)


class FaultInjector:
    """Bound to one :class:`~repro.sim.engine.SheriffSimulation`."""

    def __init__(self, sim, schedule: FaultSchedule) -> None:
        self.sim = sim
        self.schedule = schedule
        self.switches = FailureInjector(
            sim.cluster,
            flow_table=sim.flow_table,
            cost_params=sim.config.cost_params,
        )
        self._down_racks: Dict[int, Optional[int]] = {}  # rack -> up round
        self.log: List[dict] = []

    # ------------------------------------------------------------------ #
    def is_rack_down(self, rack: int) -> bool:
        return rack in self._down_racks

    @property
    def down_racks(self) -> frozenset:
        return frozenset(self._down_racks)

    # ------------------------------------------------------------------ #
    def begin_round(self, now: int) -> RoundFaults:
        """Recover expired shim outages, then apply due faults."""
        rf = RoundFaults()
        for rack, up_round in sorted(self._down_racks.items()):
            if up_round is not None and up_round <= now:
                del self._down_racks[rack]
        for index, spec in self.schedule.due(now):
            detail = self._apply(spec, now, rf)
            rf.injected += 1
            record = {
                "round": now,
                "spec": index,
                "kind": spec.kind.value,
                "target": spec.target,
                "detail": detail,
            }
            rf.details.append(record)
            self.log.append(record)
            self.sim.metrics.counter("sheriff_faults_injected_total").inc()
            if self.sim.tracer.enabled:
                self.sim.tracer.emit(
                    FaultInjected(
                        fault_kind=spec.kind.value,
                        target=spec.target,
                        detail=detail,
                    )
                )
        if self._down_racks:
            rf.degraded = True
        return rf

    def _apply(self, spec: FaultSpec, now: int, rf: RoundFaults) -> str:
        kind = spec.kind
        if kind is FaultKind.HOST_CRASH:
            return self._crash_host(spec.target, rf)
        if kind is FaultKind.HOST_RECOVER:
            return self._recover_host(spec.target)
        if kind is FaultKind.SHIM_DOWN:
            up = now + spec.duration if spec.duration is not None else None
            self._down_racks[spec.target] = up
            rf.degraded = True
            return "until-shim-up" if up is None else f"until-round-{up}"
        if kind is FaultKind.SHIM_UP:
            self._down_racks.pop(spec.target, None)
            return "shim restored"
        if kind is FaultKind.MIGRATION_ABORT:
            return self._abort_migration(spec.target, rf)
        if kind is FaultKind.SWITCH_FAIL:
            report = self.switches.fail(spec.target)
            self._refresh_cost_model(rf)
            return (
                f"rerouted={report.flows_rerouted} "
                f"dropped={len(report.flows_dropped)} "
                f"partitioned={len(report.racks_disconnected)}"
            )
        if kind is FaultKind.SWITCH_RECOVER:
            report = self.switches.recover(spec.target)
            self._refresh_cost_model(rf)
            return (
                f"readmitted={len(report.flows_readmitted)} "
                f"partitioned={len(report.racks_disconnected)}"
            )
        raise ConfigurationError(f"unhandled fault kind {kind}")

    # ------------------------------------------------------------------ #
    def _refresh_cost_model(self, rf: RoundFaults) -> None:
        """Rebuild Eq. (1) costs over the surviving fabric.

        A partitioned fabric cannot be replanned — keep the previous
        model (its routes may cross dead links, but the matching still
        terminates) and mark the round degraded.
        """
        try:
            model = self.switches.rebuild_cost_model()
        except TopologyError:
            rf.degraded = True
            return
        self.sim.cost_model = model
        for manager in self.sim.managers.values():
            manager.cost_model = model

    def _crash_host(self, host: int, rf: RoundFaults) -> str:
        sim = self.sim
        pl = sim.cluster.placement
        aborted = 0
        if sim.inflight is not None:
            for vm in sorted(sim.inflight.vms_in_flight):
                rec = sim.inflight._active[vm]
                if rec.dst_host == host or rec.src_host == host:
                    sim.inflight.abort(vm)
                    aborted += 1
                    rf.rollbacks += 1
                    sim.metrics.counter("sheriff_rollbacks_total").inc()
                    if sim.tracer.enabled:
                        sim.tracer.emit(
                            MigrationAborted(
                                vm=vm, dst_host=rec.dst_host,
                                reason="host-crash",
                            )
                        )
        pl.disable_host(host)
        residents = [int(v) for v in pl.vms_on_host(host)]
        evacuated: List[int] = []
        if residents:
            rack = int(pl.host_rack[host])
            # emergency evacuation: the regular Alg. 3 matching against the
            # rack's one-hop region, committed instantly through a private
            # receiver so the placement reflects the rescue immediately.
            # metrics=None keeps the round's REQUEST/ACK counters clean —
            # evacuations are accounted by their own counters below.
            port = ReceiverRegistry(sim.cluster, tracer=sim.tracer)
            dest_hosts = sim.managers[rack].shim.candidate_hosts().tolist()
            vmmigration(
                sim.cluster,
                sim.cost_model,
                residents,
                dest_hosts,
                port,
                balance_weight=sim.config.balance_weight,
                tracer=sim.tracer,
                metrics=None,
            )
            moved, _failed = port.commit_round_tolerant()
            evacuated = [vm for vm, _h in moved]
        lost = [vm for vm in residents if int(pl.vm_host[vm]) == host]
        for vm in lost:
            pl.mark_lost(vm)
        if sim.flow_table is not None and lost:
            lost_set = set(lost)
            for fid, flow in list(sim.flow_table.flows.items()):
                if flow.vm in lost_set:
                    sim.flow_table.remove_flow(fid)
        rf.evacuated += len(evacuated)
        rf.lost += len(lost)
        sim.metrics.counter("sheriff_vms_evacuated_total").inc(len(evacuated))
        sim.metrics.counter("sheriff_vms_lost_total").inc(len(lost))
        if sim.tracer.enabled:
            sim.tracer.emit(
                HostCrashed(
                    host=host, evacuated=tuple(evacuated), lost=tuple(lost)
                )
            )
        return (
            f"aborted={aborted} evacuated={len(evacuated)} lost={len(lost)}"
        )

    def _recover_host(self, host: int) -> str:
        pl = self.sim.cluster.placement
        pl.enable_host(host)
        restored = [
            vm for vm in sorted(pl.lost_vms) if int(pl.vm_host[vm]) == host
        ]
        for vm in restored:
            pl.restore_lost(vm)
        return f"restored={len(restored)}"

    def _abort_migration(self, target: int, rf: RoundFaults) -> str:
        sim = self.sim
        if sim.inflight is None:
            return "no-op: instant-commit engine"
        active = sorted(sim.inflight.vms_in_flight)
        if not active:
            return "no-op: nothing in flight"
        vm = target if target in active else active[0]
        rec = sim.inflight.abort(vm)
        rf.rollbacks += 1
        sim.metrics.counter("sheriff_rollbacks_total").inc()
        if sim.tracer.enabled:
            sim.tracer.emit(
                MigrationAborted(
                    vm=vm, dst_host=rec.dst_host, reason="injected-abort"
                )
            )
        return f"vm={vm} dst={rec.dst_host}"
