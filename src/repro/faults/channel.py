"""Lossy REQUEST/ACK channel with timeout, bounded retry and idempotence.

The paper's Alg. 4 assumes a reliable control channel between shims; this
module drops that assumption.  :class:`UnreliableChannel` wraps a
:class:`~repro.migration.request.ReceiverRegistry` and models, per
REQUEST:

* **request-leg loss** — the message never reaches the receiver;
* **reply-leg loss** — the receiver answered but the ACK/REJECT is lost;
* **silent receivers** — a destination rack whose shim is down answers
  nothing (the sender cannot distinguish this from loss);
* **bounded retry with exponential backoff** — the sender retries up to
  ``max_retries`` times, waiting ``timeout_s * backoff_factor**attempt``
  between attempts.  Backoff is *simulated* (accumulated in
  ``simulated_wait_s``), never slept — runs stay fast and deterministic.

Retries are delivered through
:meth:`~repro.migration.request.ReceiverRegistry.redeliver`, so a
duplicate of an already-ACKed REQUEST returns the cached verdict instead
of double-reserving.  When every attempt times out *after* the receiver
ACKed (all replies lost), the sender gives up believing REJECT while the
receiver holds a reservation; the channel models the receiver's lease
expiry by cancelling that orphan reservation — the round can never end
half-committed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.migration.request import ReceiverRegistry, RequestOutcome
from repro.obs.events import RequestTimedOut
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.rng import stream_for

__all__ = ["ChannelPolicy", "UnreliableChannel"]


@dataclass(frozen=True)
class ChannelPolicy:
    """Loss/retry behavior of the REQUEST/ACK control channel."""

    loss_probability: float = 0.0
    timeout_s: float = 0.5
    max_retries: int = 3
    backoff_factor: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not (0.0 <= self.loss_probability < 1.0):
            raise ConfigurationError(
                f"loss_probability must be in [0, 1), got {self.loss_probability}"
            )
        if self.timeout_s <= 0:
            raise ConfigurationError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )


class UnreliableChannel:
    """A ``request``-compatible port that loses and retries messages.

    Drop-in for the ``receivers`` argument of the shim round methods —
    they only ever call ``.request``.  All committing/reset traffic still
    goes through the wrapped registry directly.
    """

    def __init__(
        self,
        inner: ReceiverRegistry,
        policy: ChannelPolicy,
        *,
        is_rack_down: Optional[Callable[[int], bool]] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.inner = inner
        self.policy = policy
        self._is_rack_down = is_rack_down if is_rack_down is not None else (
            lambda rack: False
        )
        self.metrics = metrics
        self.tracer = tracer
        self._rng = stream_for(policy.seed, "channel")
        self.retries = 0
        self.timeouts = 0
        self.cancels = 0
        self.simulated_wait_s = 0.0

    # ------------------------------------------------------------------ #
    def _lost(self) -> bool:
        p = self.policy.loss_probability
        return p > 0.0 and self._rng.random() < p

    def request(self, vm: int, dst_host: int, dst_rack: int) -> RequestOutcome:
        """One sender-side REQUEST over the lossy link.

        Returns the receiver's verdict, or ``REJECT`` after retry
        exhaustion (REJECT-on-timeout — the matching loop treats the
        destination as refused and retries elsewhere, it never hangs).
        """
        pol = self.policy
        wait = pol.timeout_s
        attempts = 0
        for attempt in range(pol.max_retries + 1):
            attempts = attempt + 1
            receiver_up = not self._is_rack_down(dst_rack)
            if receiver_up and not self._lost():
                outcome = self.inner.redeliver(vm, dst_host, dst_rack)
                if not self._lost():  # reply leg survived
                    self.retries += attempt
                    if self.metrics is not None and attempt:
                        self.metrics.counter(
                            "sheriff_channel_retries_total"
                        ).inc(attempt)
                    return outcome
            # timed out: back off and retry
            self.simulated_wait_s += wait
            wait *= pol.backoff_factor
        self.retries += attempts - 1
        self.timeouts += 1
        if self.metrics is not None:
            if attempts > 1:
                self.metrics.counter("sheriff_channel_retries_total").inc(
                    attempts - 1
                )
            self.metrics.counter("sheriff_request_timeouts_total").inc()
        if self.tracer.enabled:
            self.tracer.emit(
                RequestTimedOut(
                    vm=vm, dst_host=dst_host, dst_rack=dst_rack,
                    attempts=attempts,
                )
            )
        # Every reply was lost after the receiver (possibly) reserved: the
        # sender will act on REJECT, so the receiver-side lease must not
        # survive — cancel the orphan reservation (lease expiry).
        if self.inner.holds_reservation(vm):
            self.inner.cancel(vm)
            self.cancels += 1
            if self.metrics is not None:
                self.metrics.counter("sheriff_rollbacks_total").inc()
        return RequestOutcome.REJECT
