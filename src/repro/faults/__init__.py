"""Deterministic fault injection for the Sheriff simulator.

The paper assumes crashes "could be resolved by backup system"
(Sec. II); this package is that backup system made testable.  It
generalizes :class:`~repro.sim.failures.FailureInjector` (switch death)
to host crashes, delegation/shim outages, in-flight migration aborts and
a lossy REQUEST/ACK channel — all seed-reproducible, all off by default:
with no :class:`FaultSchedule` and no :class:`ChannelPolicy` configured,
every simulation is byte-identical to a build without this package.

See ``docs/robustness.md`` for the fault model and degraded-mode
semantics, and ``python -m repro chaos`` for the campaign runner.
"""

from repro.faults.adversarial import run_adversarial_campaign
from repro.faults.campaign import default_schedule, run_chaos_campaign
from repro.faults.channel import ChannelPolicy, UnreliableChannel
from repro.faults.injector import FaultInjector, RoundFaults
from repro.faults.schedule import FaultKind, FaultSchedule, FaultSpec

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultSchedule",
    "ChannelPolicy",
    "UnreliableChannel",
    "FaultInjector",
    "RoundFaults",
    "default_schedule",
    "run_chaos_campaign",
    "run_adversarial_campaign",
]
