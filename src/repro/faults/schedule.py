"""Deterministic fault schedules.

A :class:`FaultSchedule` is a list of :class:`FaultSpec` entries, each
firing either once at a fixed round (``at_round=N``) or per-round with
probability ``p`` under its own dedicated RNG stream
(:func:`repro.rng.stream_for` keyed by the spec's index).  Per-spec
streams make firing decisions independent of each other and of the
simulation's own randomness: adding a spec, or a spec firing earlier,
never perturbs another spec's draws.

The schedule is *passive* — it only answers "which specs fire this
round?"; :class:`repro.faults.injector.FaultInjector` applies them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.rng import stream_for

__all__ = ["FaultKind", "FaultSpec", "FaultSchedule"]


class FaultKind(Enum):
    """The fault classes the injector knows how to apply."""

    HOST_CRASH = "host_crash"
    HOST_RECOVER = "host_recover"
    SHIM_DOWN = "shim_down"
    SHIM_UP = "shim_up"
    MIGRATION_ABORT = "migration_abort"
    SWITCH_FAIL = "switch_fail"
    SWITCH_RECOVER = "switch_recover"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Parameters
    ----------
    kind:
        What breaks (see :class:`FaultKind`).
    target:
        Host id (HOST_*), rack id (SHIM_*), switch node id (SWITCH_*) or
        VM id (MIGRATION_ABORT).  ``-1`` lets the injector pick — only
        meaningful for MIGRATION_ABORT (first in-flight VM).
    at_round:
        Fire exactly once when the round index equals this value.
    probability:
        When ``at_round`` is ``None``: per-round firing probability under
        the spec's dedicated RNG stream.
    duration:
        SHIM_DOWN only — auto-recover after this many rounds (``None`` =
        until an explicit SHIM_UP).
    """

    kind: FaultKind
    target: int = -1
    at_round: Optional[int] = None
    probability: float = 0.0
    duration: Optional[int] = None

    def __post_init__(self) -> None:
        if self.at_round is None and not (0.0 < self.probability <= 1.0):
            raise ConfigurationError(
                f"{self.kind.value}: need at_round or probability in (0, 1], "
                f"got at_round=None probability={self.probability}"
            )
        if self.at_round is not None and self.at_round < 0:
            raise ConfigurationError(
                f"{self.kind.value}: at_round must be >= 0, got {self.at_round}"
            )
        if self.duration is not None and self.duration < 1:
            raise ConfigurationError(
                f"{self.kind.value}: duration must be >= 1, got {self.duration}"
            )
        if self.target < 0 and self.kind is not FaultKind.MIGRATION_ABORT:
            raise ConfigurationError(
                f"{self.kind.value}: an explicit target id is required"
            )


class FaultSchedule:
    """An ordered collection of fault specs with per-spec RNG streams.

    ``due(now)`` must be called exactly once per round (the injector's
    ``begin_round`` does); each call advances the probabilistic specs'
    streams by one draw, so firing is a pure function of
    ``(seed, spec index, round)``.
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), *, seed: int = 0) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self._rngs = [
            stream_for(seed, "fault", i) for i in range(len(self.specs))
        ]
        self._fired: set[int] = set()  # one-shot specs already applied

    def __len__(self) -> int:
        return len(self.specs)

    @property
    def empty(self) -> bool:
        return not self.specs

    def due(self, now: int) -> List[Tuple[int, FaultSpec]]:
        """Specs firing at round *now*, as ``(index, spec)`` pairs."""
        out: List[Tuple[int, FaultSpec]] = []
        for i, spec in enumerate(self.specs):
            if spec.at_round is not None:
                if spec.at_round == now and i not in self._fired:
                    self._fired.add(i)
                    out.append((i, spec))
            elif self._rngs[i].random() < spec.probability:
                out.append((i, spec))
        return out
