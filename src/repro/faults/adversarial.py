"""Adversarial campaign: the fallback governor's worst-case bound, shown.

:func:`run_adversarial_campaign` runs three arms over identical clusters,
fault schedules and deceptive calm-then-cliff workloads
(:func:`repro.traces.adversarial_streams` — engineered so the whole
forecast pool is wrong in the damaging direction at every regime change):

* ``reactive`` — the paper's contingency baseline, no forecasts at all;
* ``predictive`` — an unguarded :class:`~repro.sim.reactive.PredictiveManager`,
  i.e. pre-alerting that trusts the (systematically wrong) forecasts;
* ``guarded`` — the same predictive manager under
  ``fallback_policy="reactive"``, so the
  :class:`~repro.sim.fallback.FallbackManager` degrades to the reactive
  floor once trailing forecast error crosses the bound.

The report's ``bound`` section asserts the worst-case contract: on the
damage metrics (host-overload rounds and VMs lost to the fault schedule)
the guarded arm stays within ``factor`` times the reactive baseline plus
an absolute ``slack`` — no matter how wrong the models are, the governor
caps the downside at "reactive plus a detection window".  Like the chaos
campaign, everything derives from ``seed`` and ``profile=False`` is
forced, so two runs with the same arguments produce byte-identical JSON
(the ``make adversarial`` target asserts that with ``cmp``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import SheriffConfig
from repro.errors import ConfigurationError
from repro.faults.schedule import FaultKind, FaultSchedule, FaultSpec

__all__ = ["run_adversarial_campaign"]


def _arm_schedule(placement, rounds: int, *, seed: int, crashes: int = 3) -> FaultSchedule:
    """The shared per-arm fault schedule (rebuilt fresh for each arm).

    The *crashes* fullest hosts (by built-time occupancy — identical
    across arms since every arm rebuilds the same seeded cluster) crash
    together a third of the way in.  Evacuating several packed hosts at
    once saturates their one-hop regions, so ``vms_lost`` genuinely
    depends on where each policy's migrations have put VMs by then.  A
    small per-round in-flight abort probability runs throughout.
    """
    counts = np.bincount(placement.vm_host, minlength=placement.num_hosts)
    targets = np.argsort(-counts, kind="stable")[:crashes]
    at = max(1, rounds // 3)
    specs = [
        FaultSpec(FaultKind.HOST_CRASH, target=int(t), at_round=at)
        for t in targets
    ]
    specs.append(FaultSpec(FaultKind.MIGRATION_ABORT, probability=0.15))
    return FaultSchedule(specs, seed=seed)


def _run_arm(
    *,
    arm: str,
    size: int,
    warm: int,
    rounds: int,
    seed: int,
    threshold: float,
    period: int,
    spike_len: int,
    cfg_base: SheriffConfig,
) -> dict:
    """One arm on a freshly built, identically seeded cluster/workload."""
    from repro.cluster import build_cluster
    from repro.sim.driver import run_managed_simulation
    from repro.sim.engine import SheriffSimulation
    from repro.sim.inflight import MigrationTiming
    from repro.sim.reactive import (
        DemandDrivenWorkload,
        PredictiveManager,
        ReactiveManager,
    )
    from repro.topology import build_fattree
    from repro.traces.adversarial import adversarial_streams

    topo = build_fattree(size)
    cluster = build_cluster(
        topo,
        hosts_per_rack=4,
        fill_fraction=0.9,
        skew=1.05,
        seed=seed,
        delay_sensitive_fraction=0.0,
    )
    streams = adversarial_streams(
        cluster.num_vms,
        warm + rounds,
        period=period,
        spike_len=spike_len,
        seed=seed,
    )
    workload = DemandDrivenWorkload(
        cluster, {vm: s for vm, s in enumerate(streams)}
    )
    cfg = cfg_base.replace(
        fault_schedule=_arm_schedule(cluster.placement, rounds, seed=seed),
        migration_timing=MigrationTiming(),
        profile=False,
        fallback_policy="reactive" if arm == "guarded" else "none",
    )
    sim = SheriffSimulation(cluster, cfg)
    if arm == "reactive":
        manager = ReactiveManager(workload, threshold=threshold)
    else:
        manager = PredictiveManager(workload, threshold=threshold)
    report = run_managed_simulation(
        sim,
        workload,
        manager,
        warm=warm,
        horizon=warm + rounds,
        overload_threshold=threshold,
    )
    sim.close()
    return {
        "overload_rounds": report.overload_rounds,
        "migrations": report.migrations,
        "total_cost": round(report.total_cost, 9),
        "vms_lost": len(cluster.placement.lost_vms),
        "first_alert_round": report.first_alert_round,
        "fallback_rounds": report.fallback_rounds,
        "fallback_transitions": report.fallback_transitions,
    }


def _metric_bound(guarded: dict, reactive: dict, key: str, factor: float, slack: float) -> dict:
    limit = factor * reactive[key] + slack
    return {
        "guarded": guarded[key],
        "reactive": reactive[key],
        "limit": round(limit, 9),
        "holds": guarded[key] <= limit,
    }


def run_adversarial_campaign(
    *,
    size: int = 4,
    rounds: int = 36,
    warm: int = 16,
    seed: int = 2015,
    overload_threshold: float = 0.7,
    period: int = 12,
    spike_len: int = 3,
    factor: float = 1.5,
    slack: float = 2.0,
    error_bound: float = 0.08,
    window: int = 6,
    recovery_rounds: int = 4,
    config: Optional[SheriffConfig] = None,
) -> dict:
    """Run the three arms; return the JSON-ready report with the bound.

    Parameters
    ----------
    factor, slack:
        The worst-case contract: guarded damage must be at most
        ``factor * reactive + slack`` on each bound metric.
    error_bound, window, recovery_rounds:
        Fallback hysteresis for the guarded arm (overrides the same
        fields of *config*); the defaults are tight enough that the
        calm-then-cliff regime trips the governor within one period.
    config:
        Extra engine knobs shared by all arms; the campaign forces
        ``profile=False`` and installs the fault schedule and fallback
        policy per arm on top.
    """
    if rounds < 2 * period:
        raise ConfigurationError(
            f"need rounds >= 2 * period for the regime to repeat, "
            f"got {rounds}/{period}"
        )
    if warm < 6:
        raise ConfigurationError(f"warm must be >= 6, got {warm}")
    if factor < 1.0:
        raise ConfigurationError(f"factor must be >= 1, got {factor}")
    if slack < 0.0:
        raise ConfigurationError(f"slack must be >= 0, got {slack}")
    cfg_base = (config if config is not None else SheriffConfig()).replace(
        fallback_error_bound=error_bound,
        fallback_window=window,
        fallback_recovery_rounds=recovery_rounds,
    )
    arms = {}
    for arm in ("reactive", "predictive", "guarded"):
        arms[arm] = _run_arm(
            arm=arm,
            size=size,
            warm=warm,
            rounds=rounds,
            seed=seed,
            threshold=overload_threshold,
            period=period,
            spike_len=spike_len,
            cfg_base=cfg_base,
        )
    bound = {
        "factor": factor,
        "slack": slack,
        "overload_rounds": _metric_bound(
            arms["guarded"], arms["reactive"], "overload_rounds", factor, slack
        ),
        "vms_lost": _metric_bound(
            arms["guarded"], arms["reactive"], "vms_lost", factor, slack
        ),
    }
    bound["holds"] = bound["overload_rounds"]["holds"] and bound["vms_lost"]["holds"]
    return {
        "campaign": {
            "size": size,
            "rounds": rounds,
            "warm": warm,
            "seed": seed,
            "overload_threshold": overload_threshold,
            "period": period,
            "spike_len": spike_len,
            "error_bound": error_bound,
            "window": window,
            "recovery_rounds": recovery_rounds,
        },
        "arms": arms,
        "bound": bound,
    }
