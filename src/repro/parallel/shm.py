"""Shared-memory fleet state for persistent planner workers.

The plan/execute split fans per-rack planning out to workers whose inputs
are *round-static*: the placement arrays, the measured host loads and the
round's alerts.  Re-pickling the fleet every round is what made the
throwaway pools of BENCH_2 lose to serial — at paper scale the placement
arrays alone are hundreds of kilobytes, shipped to every worker, every
round.

:class:`SharedFleet` removes that tax.  The three mutable placement
arrays (``vm_host``, ``host_used``, ``host_alive``) plus the measured
per-host load vector live in ``multiprocessing.shared_memory`` segments:

* the **owner** (the engine process) creates the segments once and
  :meth:`ship`\\ s the current arrays into them with three ``memcpy``-class
  copies per round;
* each **worker** attaches once — either by plain fork inheritance (the
  mapping survives ``fork``) or by :meth:`attach` from the picklable
  :meth:`spec` — and then sees every subsequent ship for free through the
  shared mapping.  :meth:`adopt` rebinds a worker's ``Placement`` object
  to the (read-only) shared views, so every forked reader — managers,
  cost model, :class:`~repro.cluster.snapshot.FleetSnapshot` — observes
  the parent's placement without any per-round transfer.  Per-round
  bookkeeping deltas (the move log that drives incremental cost-cache
  repair) ship separately as small messages; see
  ``repro.parallel.planner``.

Lifecycle (see docs/architecture.md): ``create -> [fork | attach] ->
ship/repair per round -> close -> unlink``.  Unlink is crash-safe twice
over: a ``weakref.finalize`` fires on owner teardown even when
``close()`` is never called, and the stdlib ``resource_tracker`` reaps
the segments if the owner dies uncleanly.  Workers explicitly unregister
attached segments from their own resource tracker so a worker exit never
yanks memory the owner still maps.
"""

from __future__ import annotations

import weakref
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cluster.placement import Placement
from repro.errors import ConfigurationError

__all__ = ["SharedFleet"]

# (attribute, dtype, size-key): the round-mutable fleet state.  Static
# arrays (capacities, rack map, values) never change after construction
# and travel to workers by fork inheritance instead.
_SEGMENTS: Tuple[Tuple[str, type, str], ...] = (
    ("vm_host", np.int64, "num_vms"),
    ("host_used", np.int64, "num_hosts"),
    ("host_alive", np.bool_, "num_hosts"),
    ("host_load", np.float64, "num_hosts"),
)


def _unregister(name: str) -> None:
    """Detach *name* from this process's resource tracker (best effort)."""
    try:
        resource_tracker.unregister(f"/{name}", "shared_memory")
    except (KeyError, OSError):
        # not registered in this process, or the tracker already exited
        pass


def _cleanup(segments: Dict[str, shared_memory.SharedMemory]) -> None:
    for seg in segments.values():
        try:
            seg.close()
        except OSError:
            pass
        try:
            seg.unlink()
        except (OSError, FileNotFoundError):
            pass


class SharedFleet:
    """Owner- or worker-side handle on the shared fleet segments."""

    def __init__(
        self,
        segments: Dict[str, shared_memory.SharedMemory],
        sizes: Dict[str, int],
        *,
        owner: bool,
    ) -> None:
        self._segments = segments
        self._sizes = dict(sizes)
        self._owner = owner
        self.ships = 0
        self.views: Dict[str, np.ndarray] = {}
        for attr, dtype, size_key in _SEGMENTS:
            n = self._sizes[size_key]
            view = np.ndarray(n, dtype=dtype, buffer=segments[attr].buf)
            if not owner:
                view.flags.writeable = False  # workers must never mutate
            self.views[attr] = view
        self._finalizer = (
            weakref.finalize(self, _cleanup, segments) if owner else None
        )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, placement: Placement) -> "SharedFleet":
        """Allocate the segments and fill them from *placement* (owner)."""
        sizes = {"num_vms": placement.num_vms, "num_hosts": placement.num_hosts}
        segments: Dict[str, shared_memory.SharedMemory] = {}
        try:
            for attr, dtype, size_key in _SEGMENTS:
                nbytes = max(1, sizes[size_key] * np.dtype(dtype).itemsize)
                segments[attr] = shared_memory.SharedMemory(
                    create=True, size=nbytes
                )
        except OSError:
            _cleanup(segments)
            raise
        fleet = cls(segments, sizes, owner=True)
        fleet.ship(placement)
        return fleet

    @classmethod
    def attach(cls, spec: Dict) -> "SharedFleet":
        """Open existing segments by name (worker side, e.g. after spawn).

        The attached segments are unregistered from this process's
        resource tracker: only the owner may unlink.
        """
        segments: Dict[str, shared_memory.SharedMemory] = {}
        try:
            for attr, _, _ in _SEGMENTS:
                seg = shared_memory.SharedMemory(name=spec["names"][attr])
                _unregister(seg.name)
                segments[attr] = seg
        except OSError:
            for seg in segments.values():
                seg.close()
            raise
        return cls(segments, spec["sizes"], owner=False)

    @property
    def spec(self) -> Dict:
        """Picklable description another process can :meth:`attach` to."""
        return {
            "names": {attr: seg.name for attr, seg in self._segments.items()},
            "sizes": dict(self._sizes),
        }

    def forked(self) -> "SharedFleet":
        """Demote a fork-inherited handle to a worker-side view.

        After ``fork`` the child inherits the owner object — including its
        unlink finalizer.  The worker must call this exactly once: it
        disarms the finalizer (the parent owns the segments), drops write
        access, and leaves the inherited zero-copy mapping in place.
        """
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        self._owner = False
        for view in self.views.values():
            view.flags.writeable = False
        return self

    # ------------------------------------------------------------------ #
    # round lifecycle
    # ------------------------------------------------------------------ #
    def ship(
        self, placement: Placement, host_load: Optional[np.ndarray] = None
    ) -> None:
        """Copy the current fleet state into the segments (owner only)."""
        if not self._owner:
            raise ConfigurationError("only the owning process may ship state")
        if placement.num_vms != self._sizes["num_vms"] or (
            placement.num_hosts != self._sizes["num_hosts"]
        ):
            raise ConfigurationError(
                "placement shape does not match the shared segments"
            )
        np.copyto(self.views["vm_host"], placement.vm_host)
        np.copyto(self.views["host_used"], placement.host_used)
        np.copyto(self.views["host_alive"], placement.host_alive)
        if host_load is not None:
            np.copyto(self.views["host_load"], host_load)
        self.ships += 1

    def adopt(self, placement: Placement) -> None:
        """Rebind *placement*'s mutable arrays to the shared views.

        Worker side.  Every object holding a reference to the placement —
        managers, shim views, the cost model — transparently reads the
        owner's shipped state afterwards.  The views are read-only, so an
        accidental ``migrate()`` in a worker raises instead of corrupting
        shared state.
        """
        if self._owner:
            raise ConfigurationError(
                "adopt() is worker-side; the owner keeps its private arrays"
            )
        placement.vm_host = self.views["vm_host"]
        placement.host_used = self.views["host_used"]
        placement.host_alive = self.views["host_alive"]

    @property
    def host_load(self) -> np.ndarray:
        return self.views["host_load"]

    # ------------------------------------------------------------------ #
    # teardown
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Unmap (all sides); the owner also unlinks. Idempotent."""
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        self.views = {}
        for seg in self._segments.values():
            try:
                seg.close()
            except OSError:
                pass
            if self._owner:
                try:
                    seg.unlink()
                except (OSError, FileNotFoundError):
                    pass
        self._segments = {}

    def __repr__(self) -> str:
        role = "owner" if self._owner else "worker"
        return (
            f"SharedFleet({role}, vms={self._sizes['num_vms']}, "
            f"hosts={self._sizes['num_hosts']}, ships={self.ships})"
        )
