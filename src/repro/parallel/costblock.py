"""Per-rack cost blocks: the precomputable half of VMMIGRATION (Alg. 3).

Within one management round the placement is frozen — promises live in the
receiver registry and accepted moves land at commit (or, with live-migration
timing, at a later round's start).  Consequently everything Alg. 3 derives
from the placement is *round-static*: the Eq. (1) cost matrix, the
feasibility mask (``free >= need``), the load steering term, and therefore
the first iteration's minimum-weight matching.  :func:`build_cost_block`
computes all of it for one rack without touching any shared mutable state,
so the engine can fan rack blocks out across a worker pool.

:func:`run_planned_migration` then replays Alg. 3's REQUEST/retry loop over
a prepared block — serialized, in deterministic rack order, against the
shared receiver registry.  It is line-for-line the same control flow as
:func:`repro.migration.vmmigration.vmmigration` operating on identical
float values, so its stats, metrics, events and accepted moves are
byte-identical to the legacy interleaved path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.costs.model import CostModel
from repro.errors import MigrationError
from repro.migration.matching import hungarian
from repro.migration.request import ReceiverRegistry, RequestOutcome
from repro.migration.vmmigration import MigrationStats, _greedy_assign
from repro.obs.events import MatchingSolved, RequestSent
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import NULL_PROFILER
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["RackCostBlock", "build_cost_block", "run_planned_migration"]

_EMPTY_I64 = np.empty(0, dtype=np.int64)

# per-registry memo of the per-rack instrument tuple used by
# :func:`run_planned_migration`: the registry's get-or-create is already
# idempotent, this just skips ~9 label-key constructions per rack call
_INSTRUMENTS: "WeakKeyDictionary" = None  # initialised below


def _rack_instruments(metrics: MetricsRegistry, rack, cross: bool):
    global _INSTRUMENTS
    if _INSTRUMENTS is None:
        from weakref import WeakKeyDictionary

        _INSTRUMENTS = WeakKeyDictionary()
    per_registry = _INSTRUMENTS.get(metrics)
    if per_registry is None:
        per_registry = _INSTRUMENTS[metrics] = {}
    key = (rack, cross)
    instruments = per_registry.get(key)
    if instruments is None:
        lbl = {"rack": rack} if rack is not None else {}
        instruments = per_registry[key] = (
            metrics.counter("sheriff_requests_sent_total", **lbl),
            metrics.counter("sheriff_requests_acked_total", **lbl),
            metrics.counter("sheriff_requests_rejected_total", **lbl),
            metrics.counter("sheriff_migration_cost_total", **lbl),
            metrics.counter("sheriff_search_space_total", **lbl),
            metrics.counter("sheriff_unplaced_total", **lbl),
            metrics.histogram("sheriff_matching_size", **lbl),
            metrics.histogram("sheriff_move_cost", **lbl),
            metrics.counter("sheriff_cross_shard_requests_total", **lbl)
            if cross
            else None,
        )
    return instruments


@dataclass
class RackCostBlock:
    """Round-static matching inputs for one delegation's candidate set.

    ``cost``/``true_cost`` are the full ``(len(vms), len(hosts))`` matrices
    of Alg. 3 (steered and raw Eq. (1) values, ``inf`` = infeasible);
    retries subset their rows instead of rebuilding them.  ``first_*``
    carry the precomputed first-iteration matching.
    """

    vms: List[int]
    hosts: np.ndarray
    host_racks: np.ndarray = field(default_factory=lambda: _EMPTY_I64.copy())
    true_cost: np.ndarray = field(default_factory=lambda: np.empty((0, 0)))
    cost: np.ndarray = field(default_factory=lambda: np.empty((0, 0)))
    steer: np.ndarray = field(default_factory=lambda: np.empty(0))
    """Per-host load-steering addend; ``cost = true_cost + steer[None, :]``.
    Kept on the block so a planner pool can drop the derived ``cost``
    matrix from the wire and have the owner rebuild it bit-identically
    (same addition, same operands) from ``true_cost``."""
    first_rows: np.ndarray = field(default_factory=lambda: _EMPTY_I64.copy())
    first_assignment: np.ndarray = field(default_factory=lambda: _EMPTY_I64.copy())
    first_fallback: bool = False
    first_elapsed: float = 0.0


def _trim_rows(cost: np.ndarray, num_hosts: int):
    """Rows entering the matching + their cost submatrix (Alg. 3 trimming).

    Mirrors the legacy loop exactly: rows with no feasible destination are
    dropped; when more VMs than hosts remain, only the cheapest ``|hosts|``
    rows (by best destination) are matched this iteration.
    """
    has_dest = np.isfinite(cost).any(axis=1)
    rows = np.nonzero(has_dest)[0]
    if rows.size == 0:
        return rows, cost[rows]
    sub = cost[rows]
    if rows.size > num_hosts:
        best_per_row = sub.min(axis=1)
        order = np.argsort(best_per_row)[:num_hosts]
        rows = rows[order]
        sub = cost[rows]
    return rows, sub


def _solve(sub: np.ndarray):
    """Hungarian with the legacy greedy fallback; returns (assignment, fallback)."""
    try:
        assignment, _ = hungarian(sub)
        return assignment, False
    except MigrationError:
        return _greedy_assign(sub), True


def build_cost_block(
    cluster: Cluster,
    cost_model: CostModel,
    candidates: Sequence[int],
    destination_hosts: Iterable[int],
    *,
    balance_weight: float = 50.0,
    host_load: Optional[np.ndarray] = None,
    snapshot=None,
    slo_scorer=None,
) -> RackCostBlock:
    """Build one rack's matching inputs (pure; safe in worker threads).

    Reads only the placement, the cost model and the optional measured
    loads; produces float values bit-identical to the legacy per-row loop
    (same gathers, same elementwise adds), and pre-solves the first
    iteration's matching.  *snapshot* (a per-round
    :class:`~repro.cluster.snapshot.FleetSnapshot`) replaces the per-host
    free-capacity/load loops with single gathers over the SoA arrays.
    """
    vms = [int(v) for v in dict.fromkeys(candidates)]
    hosts = np.asarray(sorted(set(int(h) for h in destination_hosts)), dtype=np.int64)
    block = RackCostBlock(vms=vms, hosts=hosts)
    if not vms or hosts.size == 0:
        return block
    pl = cluster.placement
    block.host_racks = pl.host_rack[hosts]
    if snapshot is not None:
        free = snapshot.free_capacity(hosts)
    else:
        free = np.asarray([pl.free_capacity(int(h)) for h in hosts])
    if host_load is not None:
        load_frac = np.asarray(host_load, dtype=np.float64)[hosts]
    elif snapshot is not None:
        load_frac = snapshot.host_load[hosts]
    else:
        load_frac = pl.host_used[hosts] / pl.host_capacity[hosts]
    steer = balance_weight * load_frac
    block.steer = steer

    per_rack = cost_model.cost_rows(vms)
    gathered = per_rack[:, block.host_racks]
    need = pl.vm_capacity[np.asarray(vms, dtype=np.int64)]
    feasible = free[None, :] >= need[:, None]
    block.true_cost = np.where(feasible, gathered, np.inf)
    # same floats as np.where(feasible, gathered + steer, inf):
    # feasible entries add identically, infeasible stay inf (inf + s = inf)
    if slo_scorer is None:
        block.cost = block.true_cost + steer[None, :]
    else:
        # scoring="slo": same operand order as the serial loop —
        # (true_cost + steer) + addend, elementwise
        addend = slo_scorer.addend(
            slo_scorer.damage(vms, need.tolist()), load_frac
        )
        block.cost = (block.true_cost + steer[None, :]) + addend

    rows, sub = _trim_rows(block.cost, int(hosts.size))
    block.first_rows = rows
    if rows.size:
        t0 = perf_counter()
        block.first_assignment, block.first_fallback = _solve(sub)
        block.first_elapsed = perf_counter() - t0
    return block


def run_planned_migration(
    cluster: Cluster,
    block: RackCostBlock,
    receivers: ReceiverRegistry,
    *,
    max_iterations: int = 8,
    tracer: Tracer = NULL_TRACER,
    metrics: Optional[MetricsRegistry] = None,
    profiler=NULL_PROFILER,
    rack: Optional[int] = None,
    shard_map=None,
) -> MigrationStats:
    """Alg. 3's serialized half: REQUEST loop and retries over a block.

    Must run in the main thread, one rack at a time, in the same order the
    legacy path visits racks — the FCFS receiver protocol is order-
    sensitive by design.  With *shard_map* (rack -> planner shard) every
    REQUEST addressed to a host planned by a different shard increments
    ``sheriff_cross_shard_requests_total`` — the pooled engine's measure
    of how regional the pod decomposition really is (zero on a fat tree,
    where destinations never leave the pod).
    """
    stats = MigrationStats()
    vms = block.vms
    hosts = block.hosts
    if metrics is not None:
        (
            c_sent,
            c_ack,
            c_rej,
            c_cost,
            c_space,
            c_unplaced,
            h_match,
            h_cost,
            c_cross,
        ) = _rack_instruments(metrics, rack, shard_map is not None)
    if not vms:
        return stats
    if hosts.size == 0:
        stats.unplaced = list(vms)
        if metrics is not None:
            c_unplaced.inc(len(vms))
        return stats
    host_racks = block.host_racks

    # row indices into the block matrices still awaiting placement
    remaining_idx = list(range(len(vms)))
    hosts_list = hosts.tolist()
    host_racks_list = host_racks.tolist()
    # per-request counter increments are batched into locals and flushed
    # once after the loop: the registry sees the same sums (ints exactly;
    # the float cost accumulates here in the same ack order, from 0.0,
    # that the per-ack increments would have used inside the scope)
    n_sent = n_ack = n_rej = n_cross = 0
    cost_acc = 0.0
    for _ in range(max_iterations):
        if not remaining_idx:
            break
        stats.iterations += 1
        if len(remaining_idx) == len(vms):
            # nothing placed yet (always true on iteration 1): the block
            # matrices are already row-aligned — no need to copy them
            cost = block.cost
            true_cost = block.true_cost
        else:
            idx = np.asarray(remaining_idx, dtype=np.int64)
            cost = block.cost[idx]
            true_cost = block.true_cost[idx]
        if stats.iterations == 1:
            stats.search_space = cost.size
            if metrics is not None:
                c_space.inc(cost.size)
            rows = block.first_rows
            if rows.size == 0:
                break
            sub = cost[rows]
            assignment = block.first_assignment
            fallback = block.first_fallback
            solve_elapsed = block.first_elapsed
            profiler.add("matching", solve_elapsed)
        else:
            rows, sub = _trim_rows(cost, int(hosts.size))
            if rows.size == 0:
                break
            t0 = perf_counter()
            with profiler.section("matching"):
                assignment, fallback = _solve(sub)
            solve_elapsed = perf_counter() - t0
        if metrics is not None:
            h_match.observe(rows.size)
        if tracer.enabled:
            matched = sum(
                1
                for k, col in enumerate(assignment)
                if col >= 0 and np.isfinite(sub[k, int(col)])
            )
            tracer.emit(
                MatchingSolved(
                    rack=rack,
                    rows=int(rows.size),
                    cols=int(hosts.size),
                    matched=int(matched),
                    iteration=stats.iterations,
                    fallback=fallback,
                    elapsed_s=solve_elapsed,
                )
            )
        progressed = False
        placed_rows = set()
        with profiler.section("request"):
            # hoist the valid-pair test and both cost gathers out of the
            # python loop; the per-request control flow below is unchanged
            assign_arr = np.asarray(assignment, dtype=np.int64)
            cols_safe = np.where(assign_arr >= 0, assign_arr, 0)
            krange = np.arange(rows.size)
            valid = (assign_arr >= 0) & np.isfinite(sub[krange, cols_safe])
            taken_cost = true_cost[np.asarray(rows), cols_safe]
            valid_list = valid.tolist()
            rows_list = [int(r) for r in rows]
            cols_list = cols_safe.tolist()
            taken_list = taken_cost.tolist()
            for k in range(len(rows_list)):
                if not valid_list[k]:
                    continue
                col = cols_list[k]
                row = remaining_idx[rows_list[k]]
                vm = vms[row]
                host = hosts_list[col]
                dst_rack = host_racks_list[col]
                stats.requested += 1
                n_sent += 1
                if shard_map is not None and shard_map.get(dst_rack) != (
                    shard_map.get(rack)
                ):
                    n_cross += 1
                if tracer.enabled:
                    tracer.emit(
                        RequestSent(
                            vm=vm, dst_host=host, dst_rack=dst_rack, src_rack=rack
                        )
                    )
                outcome = receivers.request(vm, host, dst_rack)
                if outcome is RequestOutcome.ACK:
                    c = taken_list[k]
                    stats.acked += 1
                    stats.total_cost += c
                    stats.moves.append((vm, host, c))
                    placed_rows.add(row)
                    progressed = True
                    n_ack += 1
                    cost_acc += c
                    if metrics is not None:
                        h_cost.observe(c)
                else:
                    stats.rejected += 1
                    n_rej += 1
        if placed_rows:
            remaining_idx = [r for r in remaining_idx if r not in placed_rows]
        if not progressed:
            break
    stats.unplaced = [vms[i] for i in remaining_idx]
    if metrics is not None:
        if n_sent:
            c_sent.inc(n_sent)
        if n_ack:
            c_ack.inc(n_ack)
            c_cost.inc(cost_acc)
        if n_rej:
            c_rej.inc(n_rej)
        if c_cross is not None and n_cross:
            c_cross.inc(n_cross)
        c_unplaced.inc(len(stats.unplaced))
    return stats
