"""Persistent planner worker pool over shared-memory fleet state.

The BENCH_2 lesson: a throwaway ``ProcessPoolExecutor`` that re-pickles
the fleet every round loses to serial (0.97×) no matter how parallel the
planning is on paper.  :class:`PlannerPool` is the persistent replacement:

* **Fork once, attach once.**  Workers fork from the fully-built
  simulation, inheriting the static world (topology, transmission table,
  managers, warm cost caches) copy-on-write, and keep running for the
  simulation's lifetime.  The mutable placement arrays live in
  :class:`~repro.parallel.shm.SharedFleet` segments; each worker's
  ``Placement`` is rebound onto the shared views (read-only), so the
  parent's per-round :meth:`~repro.parallel.shm.SharedFleet.ship` makes
  fresh state visible to every worker with zero per-worker transfer.
* **Repair messages, not snapshots.**  Per round each worker receives
  only the small stuff: its shard's alerts, the round's ALERT dict and
  frozen set, and the move-log delta since the last round — enough to
  replay placement bookkeeping and incrementally repair its private
  cost-vector cache, exactly like the parent does
  (:meth:`repro.costs.model.CostModel.sync_cache`).
* **Sharded planning.**  ``mode="process"`` splits racks into contiguous
  chunks; ``mode="sharded"`` assigns whole *pods* to workers, mirroring
  the paper's regional decomposition.  On a fat-tree every migration
  destination is pod-local (``neighbor_racks``), so pod shards exchange
  **zero** cross-shard REQUEST/ACK traffic; the execute phase counts any
  cross-shard request (``sheriff_cross_shard_requests_total``) as it
  routes them through the same (possibly lossy) receiver channel as
  always.

Byte-identity: workers run the very same ``plan_round`` against the very
same values the inline path reads, and the serialized FCFS execute phase
is untouched — so summaries and final placements stay byte-identical to
``workers=0`` (enforced by ``tests/service/test_sharded_identity.py``
against the golden pins).
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import traceback
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from multiprocessing import shared_memory

from repro.alerts.alert import Alert, AlertKind
from repro.cluster.shim import neighbor_racks
from repro.cluster.snapshot import FleetSnapshot
from repro.errors import ConfigurationError, SimulationError
from repro.parallel.pool import resolve_workers
from repro.parallel.shm import SharedFleet

__all__ = ["PlannerPool", "pod_groups", "shard_racks"]

# deterministic Alert wire codec: dataclass pickling dominates the payload
# cost (~100 small objects a round), so alerts cross the pipe as two flat
# arrays and are reconstructed field-for-field on the other side
_KINDS = list(AlertKind)
_KIND_CODE = {kind: i for i, kind in enumerate(_KINDS)}

# block arrays that ride in the result arena instead of the pickled reply;
# each is tagged (offset, dtype char, shape) so the owner can rebuild an
# identically-typed view
# arena handles whose unmap was deferred because a block view was still
# exported at pool close; kept alive so their __del__ never fires early
_ZOMBIE_ARENAS: list = []

_ARENA_FIELDS = (
    "cost",
    "true_cost",
    "hosts",
    "host_racks",
    "steer",
    "first_rows",
    "first_assignment",
)


def _encode_alerts(by_rack: Dict[int, list], racks: Sequence[int]):
    """Flatten the shard's alerts (rack order, in-rack order preserved)."""
    ints: List[Tuple[int, int, int, int, int, int]] = []
    mags: List[float] = []
    for rack in racks:
        for a in by_rack[rack]:
            ints.append(
                (
                    _KIND_CODE[a.kind],
                    a.rack,
                    a.time,
                    -1 if a.vm is None else a.vm,
                    -1 if a.host is None else a.host,
                    -1 if a.switch is None else a.switch,
                )
            )
            mags.append(a.magnitude)
    return (
        np.asarray(ints, dtype=np.int64).reshape(-1, 6),
        np.asarray(mags, dtype=np.float64),
    )


def _decode_alerts(ints: np.ndarray, mags: np.ndarray) -> Dict[int, list]:
    """Rebuild ``by_rack`` with Alert fields identical to the originals.

    Bypasses the frozen-dataclass constructor (7 ``object.__setattr__``
    calls plus ``__post_init__`` validation per alert): the fields came
    out of real, already-validated alerts, so the direct ``__dict__``
    assignment yields observationally identical objects at a fraction of
    the cost.
    """
    by_rack: Dict[int, list] = {}
    new = Alert.__new__
    for row, mag in zip(ints.tolist(), mags.tolist()):
        kind, rack, time, vm, host, switch = row
        alert = new(Alert)
        alert.__dict__.update(
            kind=_KINDS[kind],
            rack=rack,
            magnitude=mag,
            time=time,
            vm=None if vm < 0 else vm,
            host=None if host < 0 else host,
            switch=None if switch < 0 else switch,
        )
        by_rack.setdefault(rack, []).append(alert)
    return by_rack


def pod_groups(topology) -> List[List[int]]:
    """Racks grouped by pod (connected components of ``neighbor_racks``)."""
    seen = set()
    groups: List[List[int]] = []
    for rack in range(topology.num_racks):
        if rack in seen:
            continue
        pod = sorted({rack} | set(neighbor_racks(topology, rack)))
        seen.update(pod)
        groups.append(pod)
    return groups


def shard_racks(
    topology, num_racks: int, *, mode: str, shards: int, workers: int
) -> List[List[int]]:
    """Static rack → shard assignment for a planner pool.

    ``mode="sharded"`` keeps pods whole (contiguous pod runs per shard);
    ``mode="process"`` chunks the rack range contiguously.  ``shards=0``
    defaults to one shard per pod (sharded) or ``resolve_workers(workers)``
    (process).
    """
    if mode == "sharded":
        pods = pod_groups(topology)
        n = shards if shards > 0 else len(pods)
        n = max(1, min(n, len(pods)))
        out: List[List[int]] = [[] for _ in range(n)]
        # contiguous pod runs keep shard state cache-friendly and make
        # the assignment easy to reason about in traces
        per = (len(pods) + n - 1) // n
        for i, pod in enumerate(pods):
            out[min(i // per, n - 1)].extend(pod)
        return [sorted(s) for s in out if s]
    if mode == "process":
        n = shards if shards > 0 else resolve_workers(workers)
        n = max(1, min(n, num_racks))
        bounds = np.array_split(np.arange(num_racks), n)
        return [b.tolist() for b in bounds if b.size]
    raise ConfigurationError(
        f"planner mode must be 'process' or 'sharded', got {mode!r}"
    )


def _worker_main(conn, rack_ids: List[int], sim, fleet: SharedFleet) -> None:
    """Worker loop: attach to shared state, plan shard racks per round."""
    import gc

    # the fork-inherited heap is effectively immortal in a worker: freeze
    # it out of collection (avoids copy-on-write faults from gc touching
    # shared pages) and drop the cyclic collector — per-round plan objects
    # are acyclic and die by refcount
    gc.freeze()
    gc.disable()
    fleet.forked()
    pl = sim.cluster.placement
    fleet.adopt(pl)
    managers = {r: sim.managers[r] for r in rack_ids}
    cost_model = sim.cost_model
    rack_arr = np.asarray(sorted(rack_ids), dtype=np.int64)
    covers_all = rack_arr.size == sim.cluster.num_racks
    # result arena: the worker's float64 scratch segment for the round's
    # cost matrices — a memcpy into shared memory instead of pickling the
    # bulkiest part of the reply through the pipe.  Grown geometrically;
    # the parent re-attaches whenever the spec in the reply changes.
    arena: Optional[shared_memory.SharedMemory] = None
    arena_np: Optional[np.ndarray] = None
    arena_cap = 0
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            if arena is not None:
                arena_np = None  # drop the exported view before close
                try:
                    arena.close()
                    arena.unlink()
                except (BufferError, FileNotFoundError):  # pragma: no cover
                    pass
            break
        try:
            payload = msg[1]
            t0 = perf_counter()
            # --- repair: replay the parent's move log delta ----------- #
            delta = payload["moves"]
            if delta.size:
                moves = [tuple(m) for m in delta.tolist()]
                pl._move_details.extend(moves)
                pl._move_log.extend(m[0] for m in moves)
                pl._generation = len(pl._move_details)
            # SWITCH_FAIL and friends swap the whole cost model object;
            # the parent ships the replacement exactly once
            if payload["cost_model"] is not None:
                cost_model = pickle.loads(payload["cost_model"])
                for mgr in managers.values():
                    mgr.cost_model = cost_model
            if payload["flow_table"] is not None:
                flow_table = pickle.loads(payload["flow_table"])
                for mgr in managers.values():
                    mgr.flow_table = flow_table
            cost_model.sync_cache()
            # --- rebuild the round's alert state from the flat arrays - #
            # (same insertion order as the parent dict, identical float64
            # values: dict order and magnitudes are observationally
            # byte-identical to shipping the dict itself)
            alert_ids = payload["alert_ids"]
            vm_alerts = dict(
                zip(alert_ids.tolist(), payload["alert_vals"].tolist())
            )
            frozen = frozenset(payload["frozen"].tolist())
            primed = 0
            if vm_alerts:
                if covers_all:
                    mine = alert_ids
                else:
                    mine = alert_ids[
                        np.isin(pl.host_rack[pl.vm_host[alert_ids]], rack_arr)
                    ]
                to_prime = [int(v) for v in mine if v not in frozen]
                cost_model.prime_cost_vectors(to_prime)
                primed = len(to_prime)
            # --- plan the shard's racks over the shared snapshot ------ #
            snapshot = FleetSnapshot.from_shared(fleet, pl)
            snapshot.prime_alerts(vm_alerts)
            host_load = fleet.host_load if payload["has_host_load"] else None
            shard_by_rack = _decode_alerts(
                payload["alert_ints"], payload["alert_mags"]
            )
            plans = [
                managers[r].plan_round(
                    shard_by_rack.get(r, []),
                    vm_alerts,
                    frozen,
                    host_load,
                    snapshot=snapshot,
                )
                for r in payload["racks"]
            ]
            # move every block array into the result arena: a memcpy
            # into shared memory plus (offset, dtype, shape) tags in the
            # pickled reply, instead of ~7 ndarray pickles per rack
            need = 0
            for plan in plans:
                block = plan.block
                if block is None:
                    continue
                for name in _ARENA_FIELDS:
                    arr = getattr(block, name)
                    if arr is not None:
                        need += (arr.nbytes + 7) & ~7
            arena_spec = None
            if need > arena_cap:
                if arena is not None:
                    arena_np = None  # drop the exported view before close
                    arena.close()
                    arena.unlink()
                arena_cap = max(2 * need, 65536)
                arena = shared_memory.SharedMemory(create=True, size=arena_cap)
                arena_np = np.frombuffer(arena.buf, dtype=np.uint8)
                arena_spec = arena.name
            offsets: List[Optional[dict]] = []
            off = 0
            for plan in plans:
                block = plan.block
                if block is None:
                    offsets.append(None)
                    continue
                tags = {}
                for name in _ARENA_FIELDS:
                    arr = getattr(block, name)
                    if arr is None:
                        continue
                    if not arr.flags.c_contiguous:
                        arr = np.ascontiguousarray(arr)
                    n = arr.nbytes
                    arena_np[off : off + n] = arr.view(np.uint8).reshape(-1)
                    tags[name] = (off, arr.dtype.char, arr.shape)
                    setattr(block, name, None)
                    off = (off + n + 7) & ~7  # keep 8-byte alignment
                offsets.append(tags)
            conn.send(
                ("ok", plans, perf_counter() - t0, primed, arena_spec, offsets)
            )
        except BaseException as exc:  # ship the failure, keep serving
            conn.send(
                ("err", f"{type(exc).__name__}: {exc}", traceback.format_exc())
            )


class PlannerPool:
    """Persistent forked planner shards over a :class:`SharedFleet`.

    Built lazily by the engine on the first pooled round (so workers fork
    with warm caches), torn down by ``SheriffSimulation.close()``.
    """

    def __init__(self, sim, *, mode: str, shards: int = 0) -> None:
        self.sim = sim
        self.mode = mode
        self.shard_map: Dict[int, int] = {}
        self._assignments = shard_racks(
            sim.cluster.topology,
            sim.cluster.num_racks,
            mode=mode,
            shards=shards,
            workers=sim.config.workers,
        )
        for idx, racks in enumerate(self._assignments):
            for r in racks:
                self.shard_map[r] = idx
        self.fleet: Optional[SharedFleet] = None
        self._procs: List[mp.Process] = []
        self._conns: List = []
        self._arenas: Dict[int, shared_memory.SharedMemory] = {}
        # one full-arena view per (shard, dtype); per-block arrays are
        # cheap slices of these instead of one np.frombuffer call each
        self._arena_views: Dict[int, Dict[str, np.ndarray]] = {}
        self._shipped_gen = 0
        self._cost_model_id: Optional[int] = None
        self.stats: Dict[str, float] = {
            "attached": 0,
            "ships": 0,
            "repairs": 0,
            "reships": 0,
            "rounds": 0,
            "attach_s": 0.0,
            "ship_s": 0.0,
            "send_s": 0.0,
            "recv_s": 0.0,
        }

    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        return bool(self._procs)

    def start(self) -> None:
        """Create the shared segments and fork one worker per shard."""
        if self.started:
            return
        t0 = perf_counter()
        sim = self.sim
        pl = sim.cluster.placement
        self.fleet = SharedFleet.create(pl)
        self._shipped_gen = pl.generation
        self._cost_model_id = id(sim.cost_model)
        ctx = mp.get_context("fork")
        for idx, racks in enumerate(self._assignments):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, racks, sim, self.fleet),
                name=f"sheriff-planner-{idx}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        self.stats["attached"] = len(self._procs)
        self.stats["attach_s"] = perf_counter() - t0

    # ------------------------------------------------------------------ #
    def plan_round(
        self,
        racks: Sequence[int],
        by_rack: Dict[int, list],
        vm_alerts: Dict[int, float],
        frozen: frozenset,
        host_load: Optional[np.ndarray] = None,
    ) -> Tuple[list, Dict[str, float]]:
        """Ship state, fan the round's racks out, gather plans in rack order.

        Returns ``(plans, worker_seconds)`` like ``WorkerPool.map_ordered``
        — plans sorted by rack, so the caller's serialized execute loop
        visits racks exactly as the inline path does.
        """
        if not self.started:
            self.start()
        sim = self.sim
        pl = sim.cluster.placement
        assert self.fleet is not None
        t0 = perf_counter()
        self.fleet.ship(pl, host_load=host_load)
        self.stats["ship_s"] += perf_counter() - t0
        self.stats["ships"] += 1
        self.stats["rounds"] += 1
        moves = pl.moves_since(self._shipped_gen)
        self._shipped_gen = pl.generation
        if moves:
            self.stats["repairs"] += 1
        cost_blob = None
        if id(sim.cost_model) != self._cost_model_id:
            cost_blob = pickle.dumps(sim.cost_model)
            self._cost_model_id = id(sim.cost_model)
            self.stats["reships"] += 1
        flow_blob = (
            pickle.dumps(sim.flow_table) if sim.flow_table is not None else None
        )
        rack_set = set(racks)
        # flat arrays, not python containers: ndarray (un)pickling is a
        # buffer copy, while a dict/frozenset of the same size costs a
        # python object per element on the worker side
        n_alerts = len(vm_alerts)
        payload_base = {
            "moves": np.asarray(moves, dtype=np.int64).reshape(-1, 3),
            "cost_model": cost_blob,
            "flow_table": flow_blob,
            "alert_ids": np.fromiter(
                vm_alerts.keys(), dtype=np.int64, count=n_alerts
            ),
            "alert_vals": np.fromiter(
                vm_alerts.values(), dtype=np.float64, count=n_alerts
            ),
            "frozen": np.fromiter(frozen, dtype=np.int64, count=len(frozen)),
            "has_host_load": host_load is not None,
        }
        # every worker gets every round (even with no racks to plan) so
        # all shards replay the same move history and stay repairable
        t0 = perf_counter()
        for idx, conn in enumerate(self._conns):
            mine = sorted(r for r in self._assignments[idx] if r in rack_set)
            alert_ints, alert_mags = _encode_alerts(by_rack, mine)
            conn.send(
                (
                    "plan",
                    {
                        **payload_base,
                        "racks": mine,
                        "alert_ints": alert_ints,
                        "alert_mags": alert_mags,
                    },
                )
            )
        self.stats["send_s"] += perf_counter() - t0
        plans = []
        worker_secs: Dict[str, float] = {}
        errors = []
        t0 = perf_counter()
        for idx, conn in enumerate(self._conns):
            try:
                reply = conn.recv()
            except (EOFError, OSError):
                errors.append((idx, "worker died", ""))
                continue
            if reply[0] == "err":
                errors.append((idx, reply[1], reply[2]))
                continue
            _, shard_plans, busy, _primed, arena_spec, offsets = reply
            if arena_spec is not None:
                self._arena_views.pop(idx, None)
                old = self._arenas.pop(idx, None)
                if old is not None:
                    try:
                        old.close()
                    except BufferError:  # a stale view still exported:
                        pass  # the mapping lives until it is collected
                # forked workers share the parent's resource tracker, so
                # the segment is already registered exactly once by the
                # creating worker (which also owns the unlink)
                seg = shared_memory.SharedMemory(name=arena_spec)
                self._arenas[idx] = seg
                self._arena_views[idx] = {}
            views = self._arena_views.get(idx, {})
            for plan, tags in zip(shard_plans, offsets):
                block = plan.block
                if block is None:
                    continue
                for name, (off, dchar, shape) in (tags or {}).items():
                    # zero-copy view into the worker's arena; the worker
                    # only rewrites it on the next plan_round, after this
                    # round's execute has consumed every block
                    typed = views.get(dchar)
                    if typed is None:
                        typed = np.frombuffer(
                            self._arenas[idx].buf, dtype=np.dtype(dchar)
                        )
                        views[dchar] = typed
                    count = 1
                    for dim in shape:
                        count *= dim
                    start = off // typed.itemsize
                    setattr(
                        block, name, typed[start : start + count].reshape(shape)
                    )
                if block.cost is None and block.true_cost is not None:
                    # fallback for replies that dropped the steered matrix
                    # from the wire: the same addition the worker's build
                    # performed — identical operands, bit-identical result
                    block.cost = block.true_cost + block.steer[None, :]
            plans.extend(shard_plans)
            worker_secs[f"w{idx}"] = busy
        self.stats["recv_s"] += perf_counter() - t0
        if errors:
            idx, summary, tb = errors[0]
            raise SimulationError(
                f"planner shard {idx} failed: {summary}\n{tb}"
            )
        plans.sort(key=lambda p: p.rack)
        return plans, worker_secs

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop workers and release the shared segments (idempotent)."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._procs = []
        self._conns = []
        self._arena_views = {}  # drop exported views before closing
        for seg in self._arenas.values():
            try:
                seg.close()
            except BufferError:
                # a caller still holds a block view into the arena: the
                # mapping stays until that array dies, but parking the
                # handle keeps SharedMemory.__del__ from re-raising at gc
                _ZOMBIE_ARENAS.append(seg)
            try:
                # belt and braces if the worker was terminated mid-round;
                # normally the worker unlinks its own arena on stop
                seg.unlink()
            except (BufferError, FileNotFoundError):
                pass
        self._arenas = {}
        if self.fleet is not None:
            self.fleet.close()
            self.fleet = None

    def __enter__(self) -> "PlannerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"PlannerPool(mode={self.mode!r}, shards={len(self._assignments)}, "
            f"started={self.started})"
        )
