"""Parallel execution layer (worker pools + precomputable rack work).

The engine's round loop splits into a *plan* phase — pure per-rack work
(alert classification, PRIORITY, cost matrices, first matching) fanned out
over a :class:`~repro.parallel.pool.WorkerPool` — and a serialized
*execute* phase (FCFS REQUEST arbitration, reroutes, commit) that runs in
deterministic rack order.  Results are byte-identical to the serial path
by construction; see :mod:`repro.parallel.costblock` for the argument.

The ``costblock`` names are re-exported lazily: the pool is dependency-
free (so :mod:`repro.forecast` can use it), while the cost-block machinery
sits above the migration stack — importing it eagerly here would close an
import cycle through ``repro.forecast.selection``.
"""

from repro.parallel.pool import WorkerPool, resolve_workers

__all__ = [
    "RackCostBlock",
    "WorkerPool",
    "build_cost_block",
    "resolve_workers",
    "run_planned_migration",
]

_LAZY = {"RackCostBlock", "build_cost_block", "run_planned_migration"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.parallel import costblock

        return getattr(costblock, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
