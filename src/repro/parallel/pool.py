"""Worker-pool façade for the parallel execution layer.

One tiny abstraction serves every fan-out site (per-rack shim planning,
fleet-wide forecaster refits): :class:`WorkerPool` maps a function over a
work list and returns results **in submission order** plus a per-worker
busy-time breakdown for the profiler.

Backends
--------
``serial``
    Plain in-process loop; also what ``workers <= 1`` degrades to.  The
    fan-out sites are written so that this path is *byte-identical* to the
    pooled ones — the pool only changes *where* pure read-only work runs,
    never what it computes.
``thread``
    :class:`concurrent.futures.ThreadPoolExecutor`.  The right choice for
    tasks that read shared cluster/cost state (zero copying; numpy/scipy
    kernels release the GIL for their heavy parts).
``process``
    :class:`concurrent.futures.ProcessPoolExecutor`.  Only for
    self-contained picklable tasks (e.g. forecaster refits shipping a
    history array and returning fitted parameters); never handed shared
    mutable simulation state.

Determinism
-----------
``map_ordered`` preserves input order regardless of completion order, and
every fan-out site serializes its *mutating* phase afterwards — so results
can never depend on worker count or scheduling.  A task that raises
propagates its exception to the caller (after every submitted task has
been collected), matching the serial path's fail-fast behavior closely
enough for the engine's validation errors.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "AUTO_INLINE_COST_THRESHOLD",
    "AUTO_INLINE_TASK_THRESHOLD",
    "WorkerPool",
    "auto_inline",
    "resolve_workers",
]

T = TypeVar("T")
R = TypeVar("R")

_BACKENDS = ("serial", "thread", "process")


class _TimedTask:
    """Picklable wrapper measuring in-worker time for the process backend.

    Process workers can't write into the host's timing dict, so each task
    returns ``(result, elapsed, pid)`` and the host folds the elapsed
    times into per-worker labels afterwards.
    """

    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def __call__(self, item):
        t0 = perf_counter()
        result = self.fn(item)
        return result, perf_counter() - t0, os.getpid()


def resolve_workers(workers: int) -> int:
    """Normalize a ``workers`` knob: negative means "all cores"."""
    if workers < 0:
        return max(1, os.cpu_count() or 1)
    return workers


AUTO_INLINE_TASK_THRESHOLD = 64
"""Fan-out break-even for the ``workers=-1`` auto mode (task count).

Measured on the development container (see docs/performance.md, "The
auto heuristic"): per-rack plan tasks are dominated by the PRIORITY
knapsack and the Kuhn–Munkres solver — pure-Python loops that hold the
GIL — so a thread pool adds dispatch/synchronization overhead roughly
linear in the task count while overlapping only the numpy fraction of
each task.  Below this many tasks the pooled plan phase never beat the
inline one at any measured scale (4-pod through 8-pod fabrics); the
auto mode therefore plans inline and leaves the pool untouched.
"""


AUTO_INLINE_COST_THRESHOLD = 16384
"""Fan-out break-even for the auto mode in estimated task-cost units.

Task count alone misjudges skewed rounds: 64 racks with two alerted VMs
each are cheaper to plan than 8 racks with 400 each, yet the count
heuristic pools the former and inlines the latter.  Fan-out sites that
know their per-task weight pass ``est_cost`` — for shim planning the
number of (alerted rack, monitored VM) pairs, which is proportional to
the PRIORITY + cost-block work actually fanned out — and the decision
compares that against this measured break-even instead
(``SheriffConfig.auto_inline_threshold`` overrides it per run).
"""


def auto_inline(
    workers: int,
    num_tasks: int,
    threshold: int = AUTO_INLINE_TASK_THRESHOLD,
    *,
    est_cost: Optional[int] = None,
    cost_threshold: Optional[int] = None,
) -> bool:
    """Should an auto-sized (``workers < 0``) fan-out run inline?

    Explicit pool sizes (``workers >= 1``) always honor the user's choice;
    only the auto mode second-guesses the fan-out.  With *est_cost* the
    decision runs on estimated work (vs. *cost_threshold*, default
    :data:`AUTO_INLINE_COST_THRESHOLD`); otherwise it falls back to the
    historical task-count break-even.
    """
    if workers >= 0:
        return False
    if est_cost is not None:
        limit = (
            cost_threshold
            if cost_threshold is not None
            else AUTO_INLINE_COST_THRESHOLD
        )
        return est_cost < limit
    return num_tasks < threshold


class WorkerPool:
    """Ordered fan-out over a lazily created executor.

    Parameters
    ----------
    workers:
        Pool size; ``<= 1`` short-circuits to the serial backend (no
        executor is ever created).  Negative = one per CPU core.
    backend:
        ``"serial"``, ``"thread"`` or ``"process"`` (see module docs).
    name:
        Thread-name prefix; per-worker timing sections inherit it.
    """

    def __init__(
        self,
        workers: int = 0,
        *,
        backend: str = "thread",
        name: str = "sheriff",
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.workers = resolve_workers(int(workers))
        self.backend = backend if self.workers > 1 else "serial"
        self.name = name
        self._executor: Optional[Executor] = None
        self._timing_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @property
    def parallel(self) -> bool:
        return self.backend != "serial"

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self.backend == "thread":
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix=self.name
                )
            else:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    # ------------------------------------------------------------------ #
    def map_ordered(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
    ) -> Tuple[List[R], Dict[str, float]]:
        """Apply *fn* to every item; results in input order.

        Returns ``(results, worker_seconds)`` where *worker_seconds* maps a
        worker label (``w0``, ``w1``, ...) to the wall-clock it spent busy
        — the profiler surfaces these as per-worker sections.  The serial
        backend reports everything under ``w0``.
        """
        items = list(items)
        timings: Dict[str, float] = {}
        if not items:
            return [], timings
        if not self.parallel:
            t0 = perf_counter()
            results = [fn(item) for item in items]
            timings["w0"] = perf_counter() - t0
            return results, timings

        if self.backend == "process":
            ex = self._ensure_executor()
            out = list(ex.map(_TimedTask(fn), items))
            results = [r for r, _, _ in out]
            by_pid: Dict[int, float] = {}
            for _, elapsed, pid in out:
                by_pid[pid] = by_pid.get(pid, 0.0) + elapsed
            # stable per-run labels: pid order -> w0, w1, ... (actual
            # in-worker busy time, not the host-side wall it used to be)
            for i, pid in enumerate(sorted(by_pid)):
                timings[f"w{i}"] = by_pid[pid]
            return results, timings

        ex = self._ensure_executor()
        prefix = self.name + "_"

        def timed(item: T) -> R:
            t0 = perf_counter()
            try:
                return fn(item)
            finally:
                elapsed = perf_counter() - t0
                tname = threading.current_thread().name
                label = "w" + tname.rsplit("_", 1)[-1] if prefix in tname else tname
                with self._timing_lock:
                    timings[label] = timings.get(label, 0.0) + elapsed

        results = list(ex.map(timed, items))
        return results, timings

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut the executor down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"WorkerPool(workers={self.workers}, backend={self.backend!r})"
