"""One-shot reproduction report.

``sheriff-repro report`` (or :func:`generate_report`) runs a compact
version of every experiment family and renders a single markdown
document — the "does the whole reproduction still hold?" button.  Scales
are trimmed relative to the benchmark suite so the full report finishes
in well under a minute.
"""

from __future__ import annotations

import io
import time
from typing import List, Optional

import numpy as np

__all__ = ["generate_report"]


def _h(out: io.StringIO, title: str) -> None:
    out.write(f"\n## {title}\n\n")


def generate_report(seed: int = 2015, *, fast: bool = True, tracer=None) -> str:
    """Run every experiment family; return the markdown report.

    ``tracer`` optionally receives the structured events of the balancing
    and comparison sections (the CLI's ``--trace`` plumbs through here).
    """
    from repro.alerts.alert import Alert, AlertKind
    from repro.analysis import format_table
    from repro.cluster import build_cluster
    from repro.config import SheriffConfig
    from repro.costs.model import CostModel
    from repro.forecast import ARIMA, NARNET, mse
    from repro.forecast.evaluation import compare_models
    from repro.forecast.naive import NaiveLast, SeasonalNaive
    from repro.forecast.selection import DynamicModelSelector
    from repro.kmedian import KMedianInstance, exact_kmedian, local_search
    from repro.obs.tracer import NULL_TRACER
    from repro.sim import (
        SheriffSimulation,
        centralized_migration_round,
        inject_fraction_alerts,
        regional_migration_round,
    )
    from repro.sim.inflight import MigrationTiming
    from repro.topology import build_fattree
    from repro.traces import ZopleCloudTraces, mixed_trace

    if tracer is None:
        tracer = NULL_TRACER

    t0 = time.perf_counter()
    out = io.StringIO()
    out.write("# Sheriff reproduction report\n")
    out.write(f"\nseed: {seed}\n")

    # ------------------------------------------------------------------ #
    _h(out, "Traces (Figs. 3-5)")
    suite = ZopleCloudTraces.generate(seed)
    rows = [
        {
            "mean": float(a.mean()),
            "max": float(a.max()),
            "std": float(a.std()),
        }
        for a in (suite.cpu, suite.disk_io, suite.weekly_traffic)
    ]
    out.write("```\n")
    out.write(format_table("rows: CPU %, disk I/O MB, weekly traffic MB", rows))
    out.write("\n```\n")

    # ------------------------------------------------------------------ #
    _h(out, "Prediction (Figs. 6-8)")
    y = mixed_trace(seed=seed)[: 700 if fast else 1008]
    train = int(0.6 * len(y))
    zoo = {
        "arima(1,1,1)": lambda: ARIMA(1, 1, 1),
        "narnet(10,16)": lambda: NARNET(
            ni=10, nh=16, restarts=1, seed=1, maxiter=150
        ),
    }
    rows = compare_models(zoo, y, train, stride=2 if fast else 1)
    out.write("```\n")
    out.write(format_table("mixed trace, one-step walk-forward", rows))
    out.write("\n```\n")

    # ------------------------------------------------------------------ #
    _h(out, "Balancing (Figs. 9-10)")
    cluster = build_cluster(
        build_fattree(8),
        hosts_per_rack=4,
        skew=1.1,
        fill_fraction=0.5,
        seed=seed,
        delay_sensitive_fraction=0.0,
    )
    sim = SheriffSimulation(
        cluster, SheriffConfig(balance_weight=25.0, tracer=tracer)
    )
    rounds = 12 if fast else 24
    for r in range(rounds):
        alerts, vma = inject_fraction_alerts(cluster, 0.05, time=r, seed=seed + r)
        sim.run_round(alerts, vma)
    series = sim.workload_std_series()
    out.write(
        f"Fat-Tree k=8: workload std-dev {series[0]:.1f} % -> "
        f"{series[-1]:.1f} % over {rounds} rounds "
        f"({'declining' if series[-1] < series[0] else 'NOT declining'})\n"
    )

    # ------------------------------------------------------------------ #
    _h(out, "Rerouting and model selection")
    # a hot, dependency-rich pod: timed migrations + congested aggregation
    # switches exercise FLOWREROUTE and the full reject vocabulary
    c3 = build_cluster(
        build_fattree(4),
        hosts_per_rack=3,
        fill_fraction=0.85,
        skew=1.2,
        seed=seed,
        delay_sensitive_fraction=0.0,
        dependency_degree=2.0,
    )
    fsim = SheriffSimulation(
        c3,
        SheriffConfig(
            with_flows=True, migration_timing=MigrationTiming(), tracer=tracer
        ),
    )
    for r in range(6):
        alerts, vma = inject_fraction_alerts(c3, 0.25, time=r, seed=seed + 100 + r)
        alerts = list(alerts)
        if fsim.flow_table is not None and fsim.flow_table.flows:
            flow = next(iter(fsim.flow_table.flows.values()))
            mid = [n for n in flow.path if n not in (flow.src_rack, flow.dst_rack)]
            if mid:
                alerts.append(
                    Alert(
                        kind=AlertKind.OUTER_SWITCH,
                        rack=flow.src_rack,
                        magnitude=0.9,
                        switch=int(mid[0]),
                        time=r,
                    )
                )
                vma.setdefault(flow.vm, 0.9)
        fsim.run_round(alerts, vma)
    rerouted = int(fsim.metrics.total("sheriff_flows_rerouted_total"))
    reroute_failed = int(fsim.metrics.total("sheriff_reroute_failures_total"))
    selector = DynamicModelSelector(
        {"naive": NaiveLast, "seasonal": lambda: SeasonalNaive(period=24)},
        period=12,
        tracer=tracer,
    )
    ys = mixed_trace(seed=seed)[:230]
    selector.fit(ys[:200])
    for value in ys[200:]:
        selector.predict_one()
        selector.observe(float(value))
    out.write(
        f"Hot pod (Fat-Tree k=4): {rerouted} flows rerouted, "
        f"{reroute_failed} reroute failures over 6 rounds; dynamic selection "
        f"(Eq. 14) settled on {selector.best_model_name()} after 30 steps\n"
    )

    # ------------------------------------------------------------------ #
    _h(out, "Regional vs centralized (Figs. 11-14)")
    rows = []
    for k in (8, 16) if fast else (8, 16, 24, 32):
        c2 = build_cluster(
            build_fattree(k),
            hosts_per_rack=2,
            fill_fraction=0.5,
            skew=0.5,
            seed=seed,
            delay_sensitive_fraction=0.0,
        )
        cm = CostModel(c2)
        _, vma = inject_fraction_alerts(c2, 0.05, seed=seed)
        cands = sorted(vma)
        reg = regional_migration_round(c2, cm, cands, tracer=tracer)
        cen = centralized_migration_round(c2, cm, cands, tracer=tracer)
        rows.append(
            {
                "pods": k,
                "sheriff_per_vm": reg.total_cost / max(len(reg.moves), 1),
                "optimal_per_vm": cen.total_cost / max(len(cen.moves), 1),
                "space_ratio": cen.search_space / max(reg.search_space, 1),
            }
        )
    out.write("```\n")
    out.write(format_table("cost per placed VM and search-space ratio", rows))
    out.write("\n```\n")

    # ------------------------------------------------------------------ #
    _h(out, "Approximation (Sec. VI-C)")
    rng = np.random.default_rng(seed)
    ratios = []
    for trial in range(10 if fast else 25):
        inst = KMedianInstance.from_points(rng.random((10, 2)), 3)
        _, opt = exact_kmedian(inst)
        res = local_search(inst, p=1, seed=trial)
        if opt > 1e-12:
            ratios.append(res.cost / opt)
    out.write(
        f"Local Search (p=1) worst ratio {max(ratios):.3f}, "
        f"mean {np.mean(ratios):.3f} (bound 5.0)\n"
    )

    out.write(
        f"\n---\ngenerated in {time.perf_counter() - t0:.1f}s; "
        "see EXPERIMENTS.md for the full benchmark suite.\n"
    )
    return out.getvalue()
