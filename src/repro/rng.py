"""Deterministic random-number handling.

Every stochastic component in the library accepts either a seed (``int``),
an existing :class:`numpy.random.Generator`, or ``None`` (fresh OS entropy).
Centralising the coercion here keeps experiments reproducible: a benchmark
that passes ``seed=7`` will produce bit-identical traces, placements and
training runs on every machine.

The ``spawn`` helper derives independent child generators from a parent so
that parallel subsystems (one stream per rack, per VM, per model restart)
never share state — the same discipline mpi4py/numba codes use to keep
per-worker streams uncorrelated.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

__all__ = ["SeedLike", "as_generator", "spawn", "stream_for"]

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared stream);
    anything else builds a fresh PCG64 generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive *n* statistically independent child generators.

    When *seed* is already a ``Generator`` its internal bit generator's seed
    sequence is spawned; plain seeds go through a ``SeedSequence`` so the
    children are reproducible functions of (seed, index).
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        return list(seed.spawn(n))
    if isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def stream_for(seed: SeedLike, *key: Union[int, str]) -> np.random.Generator:
    """Return a generator keyed by a structured path.

    ``stream_for(seed, "rack", 3, "vm", 17)`` always yields the same stream
    for the same (seed, path) pair, independent of call order. Useful when a
    simulation lazily creates entities and still wants order-independent
    determinism.
    """
    parts: list[int] = []
    for k in key:
        if isinstance(k, str):
            # Stable, platform-independent hash of the string component.
            h = 2166136261
            for ch in k.encode("utf-8"):
                h = (h ^ ch) * 16777619 % (2**32)
            parts.append(h)
        else:
            parts.append(int(k) & 0xFFFFFFFF)
    if isinstance(seed, np.random.Generator):
        # Derive entropy from the generator once; keyed streams from a live
        # generator are only deterministic relative to its current state.
        base = int(seed.integers(0, 2**32))
    elif isinstance(seed, np.random.SeedSequence):
        base = int(seed.generate_state(1)[0])
    else:
        base = 0 if seed is None else int(seed)
    ss = np.random.SeedSequence(entropy=base, spawn_key=tuple(parts))
    return np.random.default_rng(ss)
