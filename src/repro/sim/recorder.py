"""Round-by-round simulation recording and export.

Long experiments want their full trajectory, not just the end state: the
recorder snapshots every metric the Figs. 9–14 analyses need after each
round, keeps them as columnar arrays, and exports to ``.npz`` (reloadable
with plain numpy) or CSV for external tooling.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.engine import RoundSummary, SheriffSimulation
from repro.sim.metrics import gini_coefficient, jain_fairness

__all__ = ["SimulationRecorder"]

PathLike = Union[str, Path]

_COLUMNS = (
    "round",
    "alerts",
    "migrations",
    "requests",
    "rejects",
    "unplaced",
    "total_cost",
    "search_space",
    "workload_std",
    "workload_mean",
    "jain_fairness",
    "gini",
)


class SimulationRecorder:
    """Attachable metrics recorder for a :class:`SheriffSimulation`.

    Usage::

        rec = SimulationRecorder(sim)
        for r in range(rounds):
            summary = sim.run_round(alerts, magnitudes)
            rec.record(summary)
        rec.to_npz("run.npz")
    """

    def __init__(self, sim: SheriffSimulation) -> None:
        self.sim = sim
        self._rows: List[Dict[str, float]] = []

    def record(self, summary: RoundSummary) -> Dict[str, float]:
        """Snapshot post-round metrics; returns the recorded row."""
        load = self.sim.cluster.placement.host_load_fraction()
        row = {
            "round": float(summary.round_index),
            "alerts": float(summary.alerts),
            "migrations": float(summary.migrations),
            "requests": float(summary.requests),
            "rejects": float(summary.rejects),
            "unplaced": float(summary.unplaced),
            "total_cost": float(summary.total_cost),
            "search_space": float(summary.search_space),
            "workload_std": float(summary.workload_std_after),
            "workload_mean": float(self.sim.cluster.workload_mean()),
            "jain_fairness": jain_fairness(load),
            "gini": gini_coefficient(load),
        }
        self._rows.append(row)
        return row

    # ------------------------------------------------------------------ #
    @property
    def num_rounds(self) -> int:
        return len(self._rows)

    def column(self, name: str) -> np.ndarray:
        """One metric's trajectory as an array."""
        if name not in _COLUMNS:
            raise ConfigurationError(
                f"unknown column {name!r}; choose from {_COLUMNS}"
            )
        return np.asarray([r[name] for r in self._rows])

    def as_dict(self) -> Dict[str, np.ndarray]:
        return {c: self.column(c) for c in _COLUMNS}

    def summary(self) -> Dict[str, float]:
        """Whole-run aggregates (totals and final balance)."""
        if not self._rows:
            raise ConfigurationError("nothing recorded yet")
        return {
            "rounds": float(self.num_rounds),
            "total_migrations": float(self.column("migrations").sum()),
            "total_cost": float(self.column("total_cost").sum()),
            "final_std": float(self._rows[-1]["workload_std"]),
            "final_jain": float(self._rows[-1]["jain_fairness"]),
            "std_improvement": float(
                self._rows[0]["workload_std"] - self._rows[-1]["workload_std"]
            ),
        }

    # ------------------------------------------------------------------ #
    def to_npz(self, path: PathLike) -> None:
        """Write all columns to a compressed ``.npz``."""
        if not self._rows:
            raise ConfigurationError("nothing recorded yet")
        np.savez_compressed(Path(path), **self.as_dict())

    def to_csv(self, path: PathLike) -> None:
        """Write all rows to CSV with a header."""
        if not self._rows:
            raise ConfigurationError("nothing recorded yet")
        with open(Path(path), "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=list(_COLUMNS))
            writer.writeheader()
            for row in self._rows:
                writer.writerow(row)
