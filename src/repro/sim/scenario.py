"""Alert-generation scenarios.

Three ways to produce a round's alerts:

* :func:`inject_fraction_alerts` — the paper's Fig. 9–14 setting: "five
  percent of virtual machines in each pod raise alerts for migration".
  The alerting VMs are drawn from the most-loaded hosts, since that is
  where overload alerts come from in reality.
* :func:`overloaded_host_alerts` — threshold-based: every host whose load
  fraction exceeds the threshold raises a SERVER alert (the reactive
  baseline uses the same function on *current* load).
* :func:`forecast_alert_round` — the full pre-alert pipeline: per-VM
  monitors predict the next profile and alert *before* the overload
  (exercises :mod:`repro.alerts` end to end).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.alerts.alert import Alert, AlertKind
from repro.alerts.monitor import VMMonitor, fleet_alert_values
from repro.cluster.cluster import Cluster
from repro.errors import ConfigurationError
from repro.rng import SeedLike, as_generator

__all__ = [
    "inject_fraction_alerts",
    "overloaded_host_alerts",
    "forecast_alert_round",
]


def inject_fraction_alerts(
    cluster: Cluster,
    fraction: float = 0.05,
    *,
    time: int = 0,
    seed: SeedLike = None,
) -> Tuple[List[Alert], Dict[int, float]]:
    """The Sec. VI-B rule: *fraction* of VMs raise SERVER alerts.

    VMs are sampled with probability proportional to their host's load
    fraction (overloaded hosts alert, idle ones do not).  Returns the
    alert list plus the per-VM ALERT magnitudes PRIORITY consumes.
    """
    if not (0.0 < fraction <= 1.0):
        raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
    rng = as_generator(seed)
    pl = cluster.placement
    n = pl.num_vms
    k = max(1, int(round(fraction * n)))
    load = pl.host_load_fraction()
    vm_load = load[pl.vm_host]
    # movable VMs only — delay-sensitive ones never alert for migration
    movable = ~pl.vm_delay_sensitive
    # overload alerts come from hosts above the fleet average; the small
    # proportional floor keeps the pool non-degenerate on a balanced fleet
    excess = np.clip(vm_load - load.mean(), 0.0, None)
    weights = (excess + 0.02 * vm_load) * movable
    total = weights.sum()
    if total <= 0:
        return [], {}
    p = weights / total
    k = min(k, int((p > 0).sum()))
    chosen = rng.choice(n, size=k, replace=False, p=p)
    alerts: List[Alert] = []
    vm_alerts: Dict[int, float] = {}
    for vm in chosen:
        host = int(pl.vm_host[vm])
        rack = int(pl.host_rack[host])
        magnitude = float(min(1.0, max(vm_load[vm], 1e-3)))
        alerts.append(
            Alert(
                kind=AlertKind.SERVER,
                rack=rack,
                magnitude=magnitude,
                host=host,
                vm=int(vm),
                time=time,
            )
        )
        vm_alerts[int(vm)] = magnitude
    return alerts, vm_alerts


def overloaded_host_alerts(
    cluster: Cluster,
    threshold: float = 0.9,
    *,
    time: int = 0,
) -> Tuple[List[Alert], Dict[int, float]]:
    """SERVER alerts for every host currently loaded above *threshold*.

    The per-VM ALERT magnitude is the host's load fraction — the shim's
    ``w = 1`` PRIORITY then evicts the largest contributor.
    """
    if not (0.0 < threshold <= 1.0):
        raise ConfigurationError(f"threshold must be in (0, 1], got {threshold}")
    pl = cluster.placement
    load = pl.host_load_fraction()
    alerts: List[Alert] = []
    vm_alerts: Dict[int, float] = {}
    for host in np.nonzero(load > threshold)[0]:
        rack = int(pl.host_rack[host])
        mag = float(min(1.0, load[host]))
        alerts.append(
            Alert(kind=AlertKind.SERVER, rack=rack, magnitude=mag, host=int(host), time=time)
        )
        for vm in pl.vms_on_host(int(host)):
            if not pl.vm_delay_sensitive[vm]:
                vm_alerts[int(vm)] = mag
    return alerts, vm_alerts


def forecast_alert_round(
    cluster: Cluster,
    monitors: Dict[int, VMMonitor],
    *,
    time: int = 0,
    batched: bool = True,
    headroom: Optional[float] = None,
    migration_cost_s: Optional[float] = None,
) -> Tuple[List[Alert], Dict[int, float]]:
    """Forecast-driven alerts: ask every monitored VM for its ALERT value.

    Monitors must be driven externally (``observe`` per round); this
    function only *reads* their predictions, mirroring the shim's periodic
    collection.  With ``batched=True`` (the default) the fleet's one-step
    predictions run through the stacked ARIMA kernels; ``batched=False``
    keeps the scalar per-monitor loop — the live oracle the byte-identity
    suite and the ``BENCH_4`` baseline measure against.

    *headroom* / *migration_cost_s* feed the monitors' confidence gate
    (see :meth:`~repro.alerts.monitor.VMMonitor.alert_value`); with the
    gate off or both signals ``None`` the historical path is unchanged.
    """
    pl = cluster.placement
    alerts: List[Alert] = []
    vm_alerts: Dict[int, float] = {}
    hosts_alerted: Dict[int, float] = {}
    items = list(monitors.items())
    if batched:
        values = fleet_alert_values(
            [mon for _, mon in items],
            headroom=headroom,
            migration_cost_s=migration_cost_s,
        )
    else:
        values = [
            mon.alert_value(
                headroom=headroom, migration_cost_s=migration_cost_s
            )
            for _, mon in items
        ]
    for (vm, _), a in zip(items, values):
        a = float(a)
        if a <= 0.0:
            continue
        vm_alerts[int(vm)] = a
        host = int(pl.vm_host[vm])
        hosts_alerted[host] = max(hosts_alerted.get(host, 0.0), a)
    for host, mag in sorted(hosts_alerted.items()):
        rack = int(pl.host_rack[host])
        alerts.append(
            Alert(kind=AlertKind.SERVER, rack=rack, magnitude=mag, host=host, time=time)
        )
    return alerts, vm_alerts
