"""The Sheriff simulation engine.

One :class:`SheriffSimulation` owns a cluster, a cost model, one
:class:`~repro.migration.manager.ShimManager` per rack and the shared
receiver registry.  A *round* is: deliver alerts → every shim runs
Alg. 1 (selection + matching + REQUEST) → commit accepted migrations →
record metrics.  Shims run logically in parallel; the FCFS receiver
protocol (Alg. 4) is what keeps their concurrent reservations conflict-
free, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.alerts.alert import Alert
from repro.cluster.cluster import Cluster
from repro.costs.model import CostModel, CostParams
from repro.errors import SimulationError
from repro.migration.manager import RoundReport, ShimManager
from repro.migration.request import ReceiverRegistry
from repro.migration.reroute import FlowTable
from repro.sim.inflight import InFlightTracker, MigrationTiming, TimedReceiverRegistry

__all__ = ["RoundSummary", "SheriffSimulation"]


@dataclass
class RoundSummary:
    """Aggregated outcome of one management round."""

    round_index: int
    alerts: int
    migrations: int
    requests: int
    rejects: int
    total_cost: float
    search_space: int
    unplaced: int
    """Candidates no shim could place this round (retried next round)."""
    workload_std_before: float
    workload_std_after: float
    reports: List[RoundReport] = field(default_factory=list)


class SheriffSimulation:
    """Distributed (regional) Sheriff over one cluster.

    Parameters
    ----------
    cluster:
        Shared cluster state (mutated by committed migrations).
    cost_params:
        Eq. (1) knobs; defaults are the paper's simulation settings.
    alpha, beta:
        PRIORITY portions handed to every shim.
    with_flows:
        Build a :class:`FlowTable` from the dependency graph so that
        outer-switch alerts can exercise FLOWREROUTE.
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        cost_params: Optional[CostParams] = None,
        alpha: float = 0.1,
        beta: float = 0.1,
        balance_weight: float = 50.0,
        migration_cooldown: int = 3,
        migration_timing: Optional[MigrationTiming] = None,
        with_flows: bool = False,
        flow_rate: float = 0.05,
    ) -> None:
        self.cluster = cluster
        self.cost_model = CostModel(cluster, cost_params)
        self.inflight: Optional[InFlightTracker] = None
        if migration_timing is not None:
            # live-migration windows: accepted moves reserve the destination
            # now and land after the Fig. 2 timeline elapses
            self.inflight = InFlightTracker(cluster, migration_timing)
            self.receivers: ReceiverRegistry = TimedReceiverRegistry(
                cluster, self.inflight
            )
        else:
            self.receivers = ReceiverRegistry(cluster)
        self.flow_table: Optional[FlowTable] = None
        if with_flows:
            self.flow_table = FlowTable(cluster.topology)
            self._populate_flows(flow_rate)
        self.managers: Dict[int, ShimManager] = {
            r: ShimManager(
                cluster,
                self.cost_model,
                r,
                alpha=alpha,
                beta=beta,
                balance_weight=balance_weight,
                flow_table=self.flow_table,
            )
            for r in range(cluster.num_racks)
        }
        self.history: List[RoundSummary] = []
        self.migration_cooldown = migration_cooldown
        self._last_move: Dict[int, int] = {}

    def _populate_flows(self, rate: float) -> None:
        """One flow per inter-rack dependency pair, attributed to the lower VM."""
        assert self.flow_table is not None
        pl = self.cluster.placement
        racks = pl.host_rack[pl.vm_host]
        deps = self.cluster.dependencies
        for vm in range(deps.num_vms):
            for other in sorted(deps.neighbors(vm)):
                if other <= vm:
                    continue
                ra, rb = int(racks[vm]), int(racks[other])
                if ra != rb:
                    self.flow_table.add_flow(vm, ra, rb, rate)

    # ------------------------------------------------------------------ #
    def run_round(
        self,
        alerts: Sequence[Alert],
        vm_alerts: Dict[int, float],
        host_load: Optional[np.ndarray] = None,
    ) -> RoundSummary:
        """Execute one management round.

        Parameters
        ----------
        alerts:
            All alert messages of the round (any rack).
        vm_alerts:
            Per-VM ALERT magnitudes for PRIORITY.
        host_load:
            Optional measured per-host utilization (demand-driven runs);
            steers migration destinations toward genuinely cool hosts.
        """
        if self.receivers.pending:
            raise SimulationError("uncommitted reservations from a previous round")
        std_before = self.cluster.workload_std()
        by_rack: Dict[int, List[Alert]] = {}
        for alert in alerts:
            by_rack.setdefault(alert.rack, []).append(alert)
        now = len(self.history)
        if self.inflight is not None:
            assert isinstance(self.receivers, TimedReceiverRegistry)
            self.receivers.set_round(now)
            for vm, _host in self.inflight.complete_due(now):
                # landing starts the post-migration cooldown
                self._last_move[vm] = now
        frozen = frozenset(
            vm
            for vm, moved_at in self._last_move.items()
            if now - moved_at < self.migration_cooldown
        )
        if self.inflight is not None:
            frozen = frozen | self.inflight.vms_in_flight
        reports: List[RoundReport] = []
        for rack in sorted(by_rack):
            mgr = self.managers.get(rack)
            if mgr is None:
                raise SimulationError(f"alert addressed to unknown rack {rack}")
            reports.append(
                mgr.process_round(
                    by_rack[rack], vm_alerts, self.receivers, frozen, host_load
                )
            )
        moved = self.receivers.commit_round()
        if self.inflight is None:
            for vm, _host in moved:
                self._last_move[vm] = now
        std_after = self.cluster.workload_std()
        summary = RoundSummary(
            round_index=len(self.history),
            alerts=len(alerts),
            migrations=sum(r.migration.acked for r in reports),
            requests=sum(r.migration.requested for r in reports),
            rejects=sum(r.migration.rejected for r in reports),
            total_cost=sum(r.migration.total_cost for r in reports),
            search_space=sum(r.migration.search_space for r in reports),
            unplaced=sum(len(r.migration.unplaced) for r in reports),
            workload_std_before=std_before,
            workload_std_after=std_after,
            reports=reports,
        )
        self.history.append(summary)
        return summary

    # ------------------------------------------------------------------ #
    def workload_std_series(self) -> np.ndarray:
        """Std-dev after each completed round (prepended with the start)."""
        if not self.history:
            return np.asarray([self.cluster.workload_std()])
        first = self.history[0].workload_std_before
        return np.asarray([first] + [s.workload_std_after for s in self.history])
