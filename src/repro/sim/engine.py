"""The Sheriff simulation engine.

One :class:`SheriffSimulation` owns a cluster, a cost model, one
:class:`~repro.migration.manager.ShimManager` per rack and the shared
receiver registry.  A *round* is: deliver alerts → every shim runs
Alg. 1 (selection + matching + REQUEST) → commit accepted migrations →
record metrics.  Shims run logically in parallel; the FCFS receiver
protocol (Alg. 4) is what keeps their concurrent reservations conflict-
free, exactly as in the paper.

Since the service-core refactor, :meth:`SheriffSimulation.run_round` is
a *seeded deterministic scheduler* over the event-driven core in
:mod:`repro.service`: it publishes ``RoundOpened`` and one
``AlertRaised`` per alert on the simulation's
:class:`~repro.service.bus.EventBus`, then drives the
:class:`~repro.service.blackboard.BlackboardController` (whose
knowledge sources wrap the historical stage implementations — see
:mod:`repro.service.round`) to quiescence.  The cascade executes the
exact statement order of the old monolithic round, so all byte-identity
contracts survive; ``repro serve`` reuses the same core for continuous
alert ingestion (see ``docs/service.md``).

Observability: the engine threads one :class:`~repro.obs.tracer.Tracer`,
one :class:`~repro.obs.metrics.MetricsRegistry` and one
:class:`~repro.obs.profiling.Profiler` through every shim, the receiver
protocol and VMMIGRATION.  Decision sites increment labeled counters;
:class:`RoundSummary` reads its totals back from the round's metrics
scope, and ``RoundSummary.timings`` carries the per-round wall-clock
breakdown (``priority`` / ``matching`` / ``request`` / ``commit`` ...).
Configuration arrives as one :class:`~repro.config.SheriffConfig`; the
historical loose keyword arguments still work but are deprecated.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.alerts.alert import Alert
from repro.cluster.cluster import Cluster
from repro.config import SheriffConfig, resolve_config
from repro.costs.model import CostModel
from repro.errors import ConfigurationError, SimulationError
from repro.migration.manager import RoundReport, ShimManager
from repro.migration.request import ReceiverRegistry
from repro.migration.reroute import FlowTable
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import NULL_PROFILER, Profiler
from repro.parallel.planner import PlannerPool
from repro.parallel.pool import WorkerPool
from repro.service.bus import EventBus
from repro.service.events import AlertRaised, RoundClosed, RoundOpened
from repro.service.round import RoundBlackboard, build_round_controller
from repro.sim.inflight import InFlightTracker, MigrationTiming, TimedReceiverRegistry

__all__ = ["RoundSummary", "SheriffSimulation"]


@dataclass
class RoundSummary:
    """Aggregated outcome of one management round."""

    round_index: int
    alerts: int
    migrations: int
    requests: int
    rejects: int
    total_cost: float
    search_space: int
    unplaced: int
    """Candidates no shim could place this round (retried next round)."""
    workload_std_before: float
    workload_std_after: float
    reports: List[RoundReport] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)
    """Per-round wall-clock seconds by section (empty when profiling off)."""
    faults: int = 0
    """Scheduled faults injected this round (0 without a fault layer)."""
    retries: int = 0
    """REQUEST retransmissions over the lossy channel this round."""
    rollbacks: int = 0
    """Reservations/migrations rolled back this round (aborts, lease
    expiries, commit failures)."""
    degraded: bool = False
    """A shim was down, a partition blocked replanning, or a commit was
    partially refused — the round completed in degraded mode."""
    pool: Dict[str, float] = field(default_factory=dict)
    """Persistent planner-pool reuse stats (cumulative: ``attached``
    workers, state ``ships``, move-log ``repairs``, cost-model
    ``reships``); empty when planning runs inline or on the thread pool."""
    slo_violation_minutes: float = 0.0
    """SLO-violation-minutes charged this round (0 without the SLO layer)."""
    slo_by_class: Dict[str, float] = field(default_factory=dict)
    """This round's violation-minutes per tenant class (empty when off)."""


class SheriffSimulation:
    """Distributed (regional) Sheriff over one cluster.

    Parameters
    ----------
    cluster:
        Shared cluster state (mutated by committed migrations).
    config:
        One :class:`~repro.config.SheriffConfig` bundling every knob plus
        the ``tracer``/``metrics`` observability handles.  The historical
        keyword arguments (``alpha``, ``beta``, ``balance_weight``,
        ``migration_cooldown``, ``migration_timing``, ``with_flows``,
        ``flow_rate``, ``cost_params``) are accepted as deprecated
        aliases and fold into the config.
    """

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[SheriffConfig] = None,
        **kwargs,
    ) -> None:
        cfg = resolve_config(config, kwargs, owner="SheriffSimulation")
        self.config = cfg
        self.tracer = cfg.tracer
        self.metrics: MetricsRegistry = (
            cfg.metrics if cfg.metrics is not None else MetricsRegistry()
        )
        if cfg.profiler is not None:
            self.profiler = cfg.profiler
        else:
            self.profiler = Profiler() if cfg.profile else NULL_PROFILER
        self.cluster = cluster
        self.cost_model = CostModel(
            cluster, cfg.cost_params, cache=cfg.cache_cost_kernels
        )
        self.inflight: Optional[InFlightTracker] = None
        if cfg.migration_timing is not None:
            # live-migration windows: accepted moves reserve the destination
            # now and land after the Fig. 2 timeline elapses
            self.inflight = InFlightTracker(cluster, cfg.migration_timing)
            self.receivers: ReceiverRegistry = TimedReceiverRegistry(
                cluster, self.inflight, tracer=self.tracer
            )
        else:
            self.receivers = ReceiverRegistry(cluster, tracer=self.tracer)
        self.flow_table: Optional[FlowTable] = None
        if cfg.with_flows:
            self.flow_table = FlowTable(cluster.topology)
            self._populate_flows(cfg.flow_rate)
        # SLO layer — like the fault layer, only constructed when asked,
        # so default simulations never import repro.slo and stay
        # byte-identical to an SLO-free build
        if cfg.scoring not in ("network", "slo"):
            raise ConfigurationError(
                f'scoring must be "network" or "slo", got {cfg.scoring!r}'
            )
        self.slo = None
        self.slo_scorer = None
        if cfg.slo or cfg.scoring == "slo":
            from repro.slo import SloAccountant, SloModel, SloScorer

            slo_model = SloModel.from_cluster(cluster)
            timing = (
                cfg.migration_timing
                if cfg.migration_timing is not None
                else MigrationTiming()
            )
            if cfg.slo:
                self.slo = SloAccountant(
                    slo_model,
                    cluster,
                    rack_distances=self.cost_model.rack_distances,
                    timing=timing,
                    metrics=self.metrics,
                    tracer=self.tracer,
                    round_minutes=cfg.slo_round_minutes,
                    overload_threshold=cfg.slo_overload_threshold,
                    budget_minutes=cfg.slo_budget_minutes,
                )
            if cfg.scoring == "slo":
                self.slo_scorer = SloScorer(
                    slo_model, timing, weight=cfg.slo_damage_weight
                )
        self.managers: Dict[int, ShimManager] = {
            r: ShimManager(
                cluster,
                self.cost_model,
                r,
                alpha=cfg.alpha,
                beta=cfg.beta,
                balance_weight=cfg.balance_weight,
                flow_table=self.flow_table,
                tracer=self.tracer,
                metrics=self.metrics,
                profiler=self.profiler,
                slo_scorer=self.slo_scorer,
            )
            for r in range(cluster.num_racks)
        }
        self.history: List[RoundSummary] = []
        self.migration_cooldown = cfg.migration_cooldown
        self._last_move: Dict[int, int] = {}
        self._pool: Optional[WorkerPool] = None
        self._planner: Optional[PlannerPool] = None
        # service core: the round runs as a blackboard-controller cascade
        # driven over this bus (see docs/service.md); an external bus from
        # the config lets serve-mode drivers and tests observe the rounds
        self.bus: EventBus = (
            cfg.event_bus if cfg.event_bus is not None else EventBus()
        )
        self.controller = build_round_controller(self, self.bus)
        # fault layer — only constructed when configured, so fault-free
        # simulations take exactly the historical code paths (the PR 2
        # byte-identity contract).  Imported lazily to keep sim <-> faults
        # cycle-free.
        self.faults = None
        self._port: ReceiverRegistry = self.receivers
        if cfg.fault_schedule is not None or cfg.channel_policy is not None:
            from repro.faults.channel import UnreliableChannel
            from repro.faults.injector import FaultInjector
            from repro.faults.schedule import FaultSchedule

            schedule = (
                cfg.fault_schedule
                if cfg.fault_schedule is not None
                else FaultSchedule()
            )
            self.faults = FaultInjector(self, schedule)
            if cfg.channel_policy is not None:
                self._port = UnreliableChannel(
                    self.receivers,
                    cfg.channel_policy,
                    is_rack_down=self.faults.is_rack_down,
                    metrics=self.metrics,
                    tracer=self.tracer,
                )

    def _populate_flows(self, rate: float) -> None:
        """One flow per inter-rack dependency pair, attributed to the lower VM."""
        assert self.flow_table is not None
        pl = self.cluster.placement
        racks = pl.host_rack[pl.vm_host]
        # deps.pairs() enumerates (a, b) with a < b in the same lexicographic
        # order the old nested loop visited, so flow ids are unchanged
        pairs = self.cluster.dependencies.pairs()
        if pairs.size == 0:
            return
        ra = racks[pairs[:, 0]]
        rb = racks[pairs[:, 1]]
        inter = ra != rb
        for vm, src, dst in zip(pairs[inter, 0], ra[inter], rb[inter]):
            self.flow_table.add_flow(int(vm), int(src), int(dst), rate)

    def _plan_pool(self) -> WorkerPool:
        if self._pool is None:
            self._pool = WorkerPool(
                self.config.workers, backend="thread", name="sheriff-shim"
            )
        return self._pool

    def _planner_pool(self) -> PlannerPool:
        """The persistent forked planner pool (``planner="process"/"sharded"``).

        Created lazily on the first pooled round so workers fork with every
        warm-up side effect (primed cost caches, flow tables) already in
        their copy-on-write image.
        """
        if self._planner is None:
            self._planner = PlannerPool(
                self, mode=self.config.planner, shards=self.config.shards
            )
        return self._planner

    def close(self) -> None:
        """Release worker pools and shared memory (safe to call repeatedly)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._planner is not None:
            self._planner.close()
            self._planner = None

    # ------------------------------------------------------------------ #
    def run_round(
        self,
        alerts: Sequence[Alert],
        vm_alerts: Dict[int, float],
        host_load: Optional[np.ndarray] = None,
    ) -> RoundSummary:
        """Execute one management round.

        Parameters
        ----------
        alerts:
            All alert messages of the round (any rack).
        vm_alerts:
            Per-VM ALERT magnitudes for PRIORITY.
        host_load:
            Optional measured per-host utilization (demand-driven runs);
            steers migration destinations toward genuinely cool hosts.
        """
        if self.receivers.pending:
            raise SimulationError("uncommitted reservations from a previous round")
        # the round index: computed once, shared by the timed-migration
        # bookkeeping in the knowledge sources and the summary record
        # (they can never disagree)
        now = len(self.history)
        self.tracer.begin_round(now)
        self.profiler.begin_round(now)
        m = self.metrics
        board = RoundBlackboard(
            sim=self, now=now, vm_alerts=vm_alerts, host_load=host_load
        )
        self.controller.bind(board)
        try:
            with self.profiler.section("round"), m.scope() as scope:
                m.counter("sheriff_rounds_total").inc()
                m.counter("sheriff_alerts_total").inc(len(alerts))
                # the seeded deterministic scheduler: announce the round,
                # feed every alert over the bus, then drive the blackboard
                # cascade (faults → census → dispatch → landings → freeze
                # → plan → commit → close) to quiescence — the same
                # statement order as the historical monolithic round
                self.bus.publish(RoundOpened(round=now, alerts=len(alerts)))
                for alert in alerts:
                    self.bus.publish(
                        AlertRaised(
                            round=now,
                            rack=alert.rack,
                            alert_kind=alert.kind.name,
                            magnitude=float(alert.magnitude),
                            alert=alert,
                        )
                    )
                self.controller.run()
        finally:
            self.controller.bind(None)
        summary = RoundSummary(
            round_index=now,
            alerts=len(alerts),
            migrations=int(scope.total("sheriff_requests_acked_total")),
            requests=int(scope.total("sheriff_requests_sent_total")),
            rejects=int(scope.total("sheriff_requests_rejected_total")),
            total_cost=scope.total("sheriff_migration_cost_total"),
            search_space=int(scope.total("sheriff_search_space_total")),
            unplaced=int(scope.total("sheriff_unplaced_total")),
            workload_std_before=board.std_before,
            workload_std_after=board.std_after,
            reports=board.reports,
            timings=self.profiler.round_timings(),
            faults=board.fault_info.injected if board.fault_info is not None else 0,
            retries=int(scope.total("sheriff_channel_retries_total")),
            rollbacks=int(scope.total("sheriff_rollbacks_total")),
            degraded=board.degraded,
            pool=dict(self._planner.stats) if self._planner is not None else {},
            slo_violation_minutes=scope.total(
                "sheriff_slo_violation_minutes_total"
            ),
            slo_by_class=scope.by_label(
                "sheriff_slo_violation_minutes_total", "tenant"
            ),
        )
        self.history.append(summary)
        if self.config.metrics_stream is not None:
            # one snapshot per round: the scope window the summary read,
            # streamed next to the event trace for offline correlation
            self.config.metrics_stream.write(
                json.dumps({"round": now, "metrics": scope.as_dict()}) + "\n"
            )
        self.bus.publish(
            RoundClosed(
                round=now,
                alerts=summary.alerts,
                migrations=summary.migrations,
                total_cost=summary.total_cost,
                degraded=summary.degraded,
            )
        )
        return summary

    # ------------------------------------------------------------------ #
    def workload_std_series(self) -> np.ndarray:
        """Std-dev after each completed round (prepended with the start)."""
        if not self.history:
            return np.asarray([self.cluster.workload_std()])
        first = self.history[0].workload_std_before
        return np.asarray([first] + [s.workload_std_after for s in self.history])

    def timing_breakdown(self) -> Dict[str, float]:
        """Cumulative wall-clock seconds per profiled section."""
        return dict(self.profiler.totals)
