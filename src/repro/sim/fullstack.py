"""Full-stack closed loop: demand drives traffic drives alerts.

The component experiments exercise Alg. 1's cases separately; this
wrapper runs them *together*, the way a real deployment would:

1. per-VM demand streams evolve (``DemandDrivenWorkload``);
2. each inter-rack dependency carries a flow whose rate follows its
   source VM's TRF component — hot VMs push hot traffic;
3. switch load emerges from the flows; hot switches raise OUTER_SWITCH
   alerts (→ FLOWREROUTE), predicted host overload raises SERVER alerts
   (→ VMMIGRATION), in the same round;
4. migrations re-home their VMs' flows, closing the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.alerts.alert import Alert, AlertKind
from repro.alerts.qcn import SwitchQueue, ToRUplinkMonitor
from repro.cluster.cluster import Cluster
from repro.cluster.resources import ResourceKind
from repro.config import SheriffConfig
from repro.errors import ConfigurationError
from repro.migration.reroute import FlowTable
from repro.sim.congestion import congestion_alerts
from repro.sim.engine import SheriffSimulation
from repro.sim.latency import latency_percentiles
from repro.sim.reactive import DemandDrivenWorkload, PredictiveManager

__all__ = ["FullStackRound", "FullStackSimulation"]


@dataclass
class FullStackRound:
    """Everything one closed-loop round produced."""

    round_index: int
    server_alerts: int
    switch_alerts: int
    tor_alerts: int
    migrations: int
    rerouted_flows: int
    overloaded_hosts: int
    peak_switch_util: float
    p99_latency: Optional[float]


class FullStackSimulation:
    """Closed-loop Sheriff over demand, flows and both alert paths.

    Parameters
    ----------
    cluster, workload:
        Shared state; every VM needs a stream.
    base_rate:
        Flow rate of a dependency at TRF = 1; actual per-round rate is
        ``base_rate × TRF(src VM)``, floored at ``0.05 × base_rate`` so
        idle dependencies still exist on the fabric.
    host_threshold, switch_threshold:
        Overload lines for host load and switch utilization.
    tor_queue_threshold:
        Predicted normalized ToR uplink queue occupancy that raises the
        LOCAL_TOR alert (Alg. 1's third case, Sec. III-B: the shim
        "monitors the uplink flow rate of its local ToR proactively").
    ecmp:
        Spread dependency flows across equal-cost paths.
    config:
        Optional :class:`~repro.config.SheriffConfig` for the embedded
        :class:`~repro.sim.engine.SheriffSimulation` (tracer/metrics
        handles included); its flow-related knobs are ignored because the
        closed loop owns the flow table.
    """

    def __init__(
        self,
        cluster: Cluster,
        workload: DemandDrivenWorkload,
        *,
        base_rate: float = 1.0,
        host_threshold: float = 0.6,
        switch_threshold: float = 0.7,
        tor_queue_threshold: float = 0.8,
        ecmp: bool = True,
        predictive_horizon: int = 3,
        config: Optional[SheriffConfig] = None,
    ) -> None:
        if base_rate <= 0:
            raise ConfigurationError(f"base_rate must be positive, got {base_rate}")
        self.cluster = cluster
        self.workload = workload
        self.base_rate = base_rate
        self.switch_threshold = switch_threshold
        self.flow_table = FlowTable(cluster.topology, ecmp=ecmp)
        if config is not None and config.with_flows:
            # the closed loop builds and owns its own demand-driven flows
            config = config.replace(with_flows=False)
        self.sim = SheriffSimulation(cluster, config)
        for mgr in self.sim.managers.values():
            mgr.flow_table = self.flow_table
        self.manager = PredictiveManager(
            workload,
            threshold=host_threshold,
            horizon=predictive_horizon,
            workers=self.sim.config.workers,
        )
        self._dep_flows: Dict[Tuple[int, int], int] = {}
        # per-rack predictive uplink queue monitors (Alg. 1 case 2)
        lt = cluster.topology.links
        self.tor_monitors: Dict[int, ToRUplinkMonitor] = {}
        for rack in range(cluster.num_racks):
            touches = (lt.u == rack) | (lt.v == rack)
            uplink = float(lt.capacity[touches].sum())
            queue = SwitchQueue(service_rate=max(uplink, 1e-6), buffer_size=10.0 * max(uplink, 1e-6))
            self.tor_monitors[rack] = ToRUplinkMonitor(
                queue, tor_queue_threshold
            )
        self.history: List[FullStackRound] = []

    # ------------------------------------------------------------------ #
    def sync_flows(self, t: int) -> None:
        """(Re)build dependency flows with demand-driven rates.

        Flows follow their source VM's current rack (migrations re-home
        them) and scale with its TRF demand this round.
        """
        pl = self.cluster.placement
        deps = self.cluster.dependencies
        racks = pl.host_rack[pl.vm_host]
        trf = np.empty(self.cluster.num_vms)
        for vm in range(self.cluster.num_vms):
            trf[vm] = float(
                self.workload.streams[vm].at(t)[int(ResourceKind.TRF)]
            )
        wanted: Dict[Tuple[int, int], Tuple[int, int, float]] = {}
        pairs = deps.pairs()
        if pairs.shape[0]:
            ra_all = racks[pairs[:, 0]]
            rb_all = racks[pairs[:, 1]]
            rates = self.base_rate * np.maximum(trf[pairs[:, 0]], 0.05)
            # pairs() is lexicographic, matching the old nested-loop order,
            # so flow ids assigned below are unchanged
            for k in np.nonzero(ra_all != rb_all)[0]:
                wanted[(int(pairs[k, 0]), int(pairs[k, 1]))] = (
                    int(ra_all[k]),
                    int(rb_all[k]),
                    float(rates[k]),
                )
        # drop stale flows (pair gone intra-rack or endpoints moved)
        for pair in list(self._dep_flows):
            fid = self._dep_flows[pair]
            flow = self.flow_table.flows.get(fid)
            spec = wanted.get(pair)
            if flow is None or spec is None or (flow.src_rack, flow.dst_rack) != spec[:2]:
                if flow is not None:
                    self.flow_table.remove_flow(fid)
                del self._dep_flows[pair]
        # add/update
        for pair, (ra, rb, rate) in wanted.items():
            fid = self._dep_flows.get(pair)
            if fid is None:
                self._dep_flows[pair] = self.flow_table.add_flow(
                    pair[0], ra, rb, rate
                )
            else:
                flow = self.flow_table.flows[fid]
                if abs(flow.rate - rate) > 1e-12:
                    # rate change: re-account load along the existing path
                    self.flow_table._apply_load(flow.path, rate - flow.rate)
                    flow.rate = rate

    def run_round(self, t: int) -> FullStackRound:
        """Advance the closed loop by one management round at time *t*."""
        self.sync_flows(t)
        host_load = self.workload.host_load(t)
        server_alerts, vm_alerts = self.manager.alerts_at(t)
        switch_alerts, flow_vm_alerts = congestion_alerts(
            self.cluster,
            self.flow_table,
            utilization_threshold=self.switch_threshold,
            time=t,
        )
        # LOCAL_TOR path: feed each rack's uplink queue with this round's
        # originating flow load and alert on the *predicted* occupancy
        tor_alerts: List[Alert] = []
        tor_vm_alerts: Dict[int, float] = {}
        pl = self.cluster.placement
        for rack, mon in self.tor_monitors.items():
            mon.record(float(self.flow_table.node_load[rack]))
            mag = mon.alert_value()
            if mag > 0.0:
                tor_alerts.append(
                    Alert(
                        kind=AlertKind.LOCAL_TOR,
                        rack=rack,
                        magnitude=mag,
                        time=t,
                    )
                )
                for vm in pl.vms_in_rack(rack):
                    if not pl.vm_delay_sensitive[vm]:
                        trf = float(
                            self.workload.streams[int(vm)].at(t)[int(ResourceKind.TRF)]
                        )
                        tor_vm_alerts[int(vm)] = max(
                            tor_vm_alerts.get(int(vm), 0.0), trf
                        )
        merged = dict(flow_vm_alerts)
        merged.update(tor_vm_alerts)
        merged.update(vm_alerts)
        summary = self.sim.run_round(
            list(server_alerts) + list(switch_alerts) + tor_alerts,
            merged,
            host_load=host_load,
        )
        self.manager.observe(t)
        try:
            p99 = latency_percentiles(self.cluster.topology, self.flow_table)["p99"]
        except ConfigurationError:
            p99 = None
        from repro.sim.congestion import switch_capacity

        cap = switch_capacity(self.cluster.topology)
        sw = self.cluster.topology.switches()
        peak = float(np.max(self.flow_table.node_load[sw] / cap[sw])) if sw.size else 0.0
        record = FullStackRound(
            round_index=len(self.history),
            server_alerts=len(server_alerts),
            switch_alerts=len(switch_alerts),
            tor_alerts=len(tor_alerts),
            migrations=summary.migrations,
            rerouted_flows=sum(r.rerouted_flows for r in summary.reports),
            overloaded_hosts=int(
                (host_load > self.manager.threshold).sum()
            ),
            peak_switch_util=peak,
            p99_latency=p99,
        )
        self.history.append(record)
        return record

    def run(self, start: int, end: int) -> List[FullStackRound]:
        """Run rounds ``start..end-1`` (warm the predictor on 0..start-1)."""
        if not (0 <= start < end):
            raise ConfigurationError(f"need 0 <= start < end, got {start}/{end}")
        for t in range(start):
            self.manager.observe(t)
        return [self.run_round(t) for t in range(start, end)]
