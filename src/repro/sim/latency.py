"""Queueing-delay estimates from switch utilization.

The paper's motivation (Sec. I) is that congestion "greatly increases job
completion time"; utilization alone hides how *nonlinear* that is.  We
model each switch port group as an M/M/1 server: normalized utilization
``ρ`` inflates sojourn time by ``1 / (1 - ρ)``, so a switch at 0.9 is
10× slower than an idle one, not 0.9/0.0 "a bit busier".

* :func:`switch_delay_factors` — per-switch delay multiplier from a
  :class:`~repro.migration.reroute.FlowTable`'s load;
* :func:`flow_latencies` — per-flow end-to-end delay (sum over the
  traversed switches);
* :func:`latency_percentiles` — the fleet view (mean/p50/p95/p99) that
  management actions should improve.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.migration.reroute import FlowTable
from repro.sim.congestion import switch_capacity
from repro.topology.base import Topology

__all__ = ["switch_delay_factors", "flow_latencies", "latency_percentiles"]

_RHO_CAP = 0.99  # clamp: a saturated M/M/1 has unbounded delay


def switch_delay_factors(
    topology: Topology,
    flow_table: FlowTable,
    *,
    rho_cap: float = _RHO_CAP,
) -> np.ndarray:
    """Per-node M/M/1 delay multiplier ``1 / (1 - ρ)``.

    ``ρ`` is the flow load over the node's aggregate link capacity;
    utilizations at or above *rho_cap* are clamped there, so the returned
    factors are finite (a real switch drops packets instead of queueing
    forever — the clamp keeps the metric usable as a comparison signal).
    Rack (ToR) nodes are included; hosts are not modeled.
    """
    if not (0.0 < rho_cap < 1.0):
        raise ConfigurationError(f"rho_cap must be in (0, 1), got {rho_cap}")
    cap = switch_capacity(topology)
    with np.errstate(divide="ignore", invalid="ignore"):
        rho = np.where(cap > 0, flow_table.node_load / cap, 0.0)
    rho = np.clip(rho, 0.0, rho_cap)
    return 1.0 / (1.0 - rho)


def flow_latencies(
    topology: Topology,
    flow_table: FlowTable,
    *,
    per_hop_base: float = 1.0,
    rho_cap: float = _RHO_CAP,
) -> Dict[int, float]:
    """End-to-end delay estimate per flow.

    Each traversed node contributes ``per_hop_base × delay_factor``; the
    result's absolute unit is arbitrary (one uncongested hop = 1), which
    is exactly what before/after comparisons need.
    """
    if per_hop_base <= 0:
        raise ConfigurationError(f"per_hop_base must be positive, got {per_hop_base}")
    factors = switch_delay_factors(topology, flow_table, rho_cap=rho_cap)
    out: Dict[int, float] = {}
    for fid, flow in flow_table.flows.items():
        out[fid] = float(per_hop_base * factors[np.asarray(flow.path)].sum())
    return out


def latency_percentiles(
    topology: Topology,
    flow_table: FlowTable,
    *,
    percentiles: Sequence[float] = (50.0, 95.0, 99.0),
    rho_cap: float = _RHO_CAP,
) -> Dict[str, float]:
    """Fleet latency summary: mean plus the requested percentiles.

    Raises when the flow table is empty — an empty fleet has no latency
    distribution, and silently returning zeros would make a broken
    experiment look healthy.
    """
    lat = flow_latencies(topology, flow_table, rho_cap=rho_cap)
    if not lat:
        raise ConfigurationError("no flows registered; nothing to summarize")
    values = np.asarray(sorted(lat.values()))
    out = {"mean": float(values.mean())}
    for p in percentiles:
        if not (0.0 < p <= 100.0):
            raise ConfigurationError(f"percentile must be in (0, 100], got {p}")
        out[f"p{p:g}"] = float(np.percentile(values, p))
    return out
