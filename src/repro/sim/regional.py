"""Regional (Sheriff) migration planning round — Fig. 11–14 protagonist.

The exact regional counterpart of
:func:`repro.sim.centralized.centralized_migration_round`: the same
candidate VM set, but each VM may only move to hosts in its shim's
one-hop neighbor racks, and each shim plans independently (Alg. 3 with
the shared REQUEST protocol).  Comparing the two on identical candidate
sets isolates precisely what the paper's Figs. 11–14 measure: the cost
penalty and search-space savings of regional scope.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.shim import ShimView
from repro.costs.model import CostModel
from repro.migration.request import ReceiverRegistry
from repro.migration.vmmigration import vmmigration
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import NULL_PROFILER
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.centralized import CentralizedPlan

__all__ = ["regional_migration_round"]


def regional_migration_round(
    cluster: Cluster,
    cost_model: CostModel,
    candidates: Sequence[int],
    *,
    apply: bool = False,
    balance_weight: float = 0.0,
    tracer: Tracer = NULL_TRACER,
    metrics: "MetricsRegistry | None" = None,
    profiler=NULL_PROFILER,
) -> CentralizedPlan:
    """Plan one regional migration round over the same candidate set.

    Returns the same :class:`CentralizedPlan` record type so benchmark
    code treats both managers uniformly.  ``apply=False`` plans against
    the live placement but rolls the reservations back.  The optional
    observability handles flow into the receiver protocol and each
    per-rack VMMIGRATION call.
    """
    plan = CentralizedPlan()
    vms = [int(v) for v in dict.fromkeys(candidates)]
    if not vms:
        return plan
    pl = cluster.placement
    by_rack: Dict[int, List[int]] = {}
    for vm in vms:
        rack = int(pl.host_rack[pl.vm_host[vm]])
        by_rack.setdefault(rack, []).append(vm)

    receivers = ReceiverRegistry(cluster, tracer=tracer)
    for rack in sorted(by_rack):
        shim = ShimView(cluster, rack)
        stats = vmmigration(
            cluster,
            cost_model,
            by_rack[rack],
            shim.candidate_hosts().tolist(),
            receivers,
            balance_weight=balance_weight,
            tracer=tracer,
            metrics=metrics,
            profiler=profiler,
            rack=rack,
        )
        plan.search_space += stats.search_space
        plan.total_cost += stats.total_cost
        plan.moves.extend(stats.moves)
        plan.unplaced.extend(stats.unplaced)
    if apply:
        receivers.commit_round()
    else:
        receivers.reset_round()
    return plan
