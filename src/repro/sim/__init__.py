"""Round-based DCN management simulator (Sec. VI-B).

The simulator advances in management rounds of ``T`` seconds.  Each round
alerts are produced (injected per the paper's "5 % of VMs alert" rule,
derived from demand via the reactive/predictive managers, or emerging
from flow load via the congestion module), every shim runs Alg. 1, the
receiver protocol commits accepted migrations, and metrics are recorded.

Managers and baselines: `regional` (per-shim Alg. 3 planning),
`centralized` (global optimal matching, Figs. 11–14 comparator),
`kmedian_planner` (the Sec. V-A reduction pipeline), `reactive`
(contingency) and `PredictiveManager` (pre-alert) over demand-driven
workloads.  Infrastructure: `scenario`/`scenarios` (alert & demand
generation), `driver` (managed-run loop), `fullstack` (closed loop over
all three alert paths), `inflight` (live-migration windows),
`congestion`/`latency` (switch load & queueing delay), `failures`
(switch death), `metrics`/`recorder`/`timing` (measurement).
"""

from repro.config import SheriffConfig
from repro.sim.engine import RoundSummary, SheriffSimulation
from repro.sim.scenario import (
    forecast_alert_round,
    inject_fraction_alerts,
    overloaded_host_alerts,
)
from repro.sim.metrics import (
    BalanceSeries,
    gini_coefficient,
    jain_fairness,
    search_space_centralized,
    search_space_regional,
    time_above_threshold,
)
from repro.sim.centralized import CentralizedPlan, centralized_migration_round
from repro.sim.regional import regional_migration_round
from repro.sim.kmedian_planner import kmedian_migration_round
from repro.sim.fallback import FallbackManager
from repro.sim.reactive import PredictiveManager, ReactiveManager
from repro.sim.congestion import congestion_alerts, hot_switches, switch_capacity
from repro.sim.failures import FailureInjector, FailureReport
from repro.sim.timing import PlanTiming, time_plan
from repro.sim.driver import AlertSource, ManagedRunReport, run_managed_simulation
from repro.sim.fullstack import FullStackRound, FullStackSimulation
from repro.sim.inflight import InFlightTracker, MigrationTiming, TimedReceiverRegistry
from repro.sim.latency import flow_latencies, latency_percentiles, switch_delay_factors
from repro.sim.recorder import SimulationRecorder
from repro.sim.scenarios import (
    SurgeEvent,
    creeping_growth,
    flash_crowd,
    host_surges,
    steady_demand,
)

__all__ = [
    "SheriffSimulation",
    "SheriffConfig",
    "RoundSummary",
    "inject_fraction_alerts",
    "overloaded_host_alerts",
    "forecast_alert_round",
    "BalanceSeries",
    "search_space_regional",
    "search_space_centralized",
    "jain_fairness",
    "gini_coefficient",
    "time_above_threshold",
    "centralized_migration_round",
    "regional_migration_round",
    "kmedian_migration_round",
    "CentralizedPlan",
    "ReactiveManager",
    "PredictiveManager",
    "FallbackManager",
    "congestion_alerts",
    "hot_switches",
    "switch_capacity",
    "FailureInjector",
    "FailureReport",
    "PlanTiming",
    "time_plan",
    "ManagedRunReport",
    "run_managed_simulation",
    "AlertSource",
    "SurgeEvent",
    "steady_demand",
    "host_surges",
    "flash_crowd",
    "creeping_growth",
    "SimulationRecorder",
    "switch_delay_factors",
    "flow_latencies",
    "latency_percentiles",
    "FullStackSimulation",
    "FullStackRound",
    "MigrationTiming",
    "InFlightTracker",
    "TimedReceiverRegistry",
]
