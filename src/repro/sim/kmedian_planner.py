"""Centralized Alert-Migration via the k-median reduction (Sec. V-A).

The paper's centralized algorithm is not a giant matching: it *reduces*
the migration decision to k-median — pick ``m`` destination ToRs for the
alerting ToRs' load at minimum path-independent cost — and solves it with
Local Search (Alg. 5), inheriting the ``3 + 2/p`` guarantee.

This module executes the full pipeline:

1. group the alerting VMs by source ToR (the client set ``C``);
2. build the k-median instance over ``Cost(v_i, v_p)`` with per-client
   weights equal to the alerting capacity behind each ToR
   (:func:`repro.kmedian.transform.vmmigration_to_kmedian`);
3. run Local Search to open the destination ToRs;
4. pack each source's VMs into the hosts of its assigned destination ToR
   (first-fit decreasing within the rack; leftovers spill to the next
   cheapest open ToR).

The result is returned in the same :class:`CentralizedPlan` shape as the
other managers so benchmarks compare all three uniformly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.costs.model import CostModel
from repro.errors import ConfigurationError
from repro.kmedian.local_search import local_search
from repro.kmedian.transform import vmmigration_to_kmedian
from repro.obs.profiling import NULL_PROFILER
from repro.sim.centralized import CentralizedPlan

__all__ = ["kmedian_migration_round"]


def kmedian_migration_round(
    cluster: Cluster,
    cost_model: CostModel,
    candidates: Sequence[int],
    *,
    k: Optional[int] = None,
    p: int = 1,
    apply: bool = False,
    seed: int = 0,
    profiler=NULL_PROFILER,
) -> CentralizedPlan:
    """Plan one centralized round through the k-median reduction.

    Parameters
    ----------
    candidates:
        Alerting VM ids.
    k:
        Destination ToRs to open; defaults to ``max(1, #source ToRs // 2)``
        (consolidate onto half as many destinations).
    p:
        Local Search swap size (approximation ``3 + 2/p``).
    profiler:
        Optional :class:`~repro.obs.profiling.Profiler`; the Alg. 5 solve
        shows up under its ``local_search`` section.
    """
    plan = CentralizedPlan()
    vms = [int(v) for v in dict.fromkeys(candidates)]
    if not vms:
        return plan
    pl = cluster.placement
    by_rack: Dict[int, List[int]] = {}
    for vm in vms:
        by_rack.setdefault(pl.rack_of(vm), []).append(vm)
    sources = sorted(by_rack)
    if k is None:
        k = max(1, len(sources) // 2)
    n_racks = cost_model.table.num_racks
    if k > n_racks:
        raise ConfigurationError(f"cannot open {k} ToRs in a {n_racks}-rack fabric")

    weights = np.asarray(
        [float(pl.vm_capacity[by_rack[r]].sum()) for r in sources]
    )
    inst = vmmigration_to_kmedian(cost_model, sources, k=k, weights=weights)
    result = local_search(inst, p=p, seed=seed, profiler=profiler)
    assignment = inst.assignment(result.solution)  # facility (rack) per source
    plan.search_space = inst.num_clients * inst.num_facilities

    # rank open facilities per source by connection cost for spill-over
    open_racks = result.solution.tolist()
    promised: Dict[int, int] = {}

    def hosts_by_room(rack: int) -> List[int]:
        hosts = pl.hosts_in_rack(rack)
        room = [pl.free_capacity(int(h)) - promised.get(int(h), 0) for h in hosts]
        order = np.argsort(room)[::-1]
        return [int(hosts[i]) for i in order]

    for idx, src in enumerate(sources):
        dst_order = sorted(
            open_racks, key=lambda f: (f != assignment[idx], inst.distances[idx, f])
        )
        # largest VMs first: first-fit decreasing packs racks tightest
        for vm in sorted(by_rack[src], key=lambda v: -int(pl.vm_capacity[v])):
            need = int(pl.vm_capacity[vm])
            placed = False
            for rack in dst_order:
                if rack == src:
                    continue  # a "migration" within the source rack is a no-op here
                for host in hosts_by_room(rack):
                    free = pl.free_capacity(host) - promised.get(host, 0)
                    if free >= need and not cluster.dependencies.conflicts_on_host(
                        pl, vm, host
                    ):
                        cost = cost_model.migration_cost(vm, rack)
                        plan.moves.append((vm, host, cost))
                        plan.total_cost += cost
                        promised[host] = promised.get(host, 0) + need
                        placed = True
                        break
                if placed:
                    break
            if not placed:
                plan.unplaced.append(vm)

    if apply:
        for vm, host, _ in plan.moves:
            cluster.placement.migrate(vm, host)
    return plan
