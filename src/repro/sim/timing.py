"""Wall-clock timing of migration plans via the six-stage model.

Eq. (1) abstracts the pre-copy stages into the constant ``C_r``; this
module puts the time axis back (Fig. 2): given a plan's moves, it derives
per-VM memory footprints and transfer bandwidths and computes each move's
:class:`~repro.costs.precopy.MigrationTimeline`, yielding the plan's
total transfer volume, makespan (moves of one round run in parallel
across distinct host pairs) and worst-case downtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.costs.precopy import MigrationTimeline, precopy_timeline
from repro.errors import ConfigurationError, MigrationError

__all__ = ["PlanTiming", "time_plan"]


@dataclass(frozen=True)
class PlanTiming:
    """Aggregate timing of one round's accepted moves."""

    timelines: Tuple[MigrationTimeline, ...]
    total_transfer_mb: float
    makespan_s: float
    worst_downtime_s: float
    infeasible: Tuple[int, ...]
    """VMs whose migration cannot converge (dirty rate >= bandwidth)."""

    @property
    def count(self) -> int:
        return len(self.timelines)


def time_plan(
    cluster: Cluster,
    moves: Sequence[Tuple[int, int, float]],
    *,
    mem_per_capacity_mb: float = 128.0,
    dirty_fraction: float = 0.08,
    bandwidth_mbps: float = 125.0,
    downtime_target: float = 0.06,
) -> PlanTiming:
    """Time every ``(vm, dst_host, cost)`` move of a plan.

    Parameters
    ----------
    mem_per_capacity_mb:
        RAM footprint per VM capacity unit — a capacity-20 VM defaults to
        a 2.5 GB guest.
    dirty_fraction:
        Page-dirty rate as a fraction of the transfer bandwidth (idle
        guests ~0.01, busy databases 0.3+).
    bandwidth_mbps:
        Migration transfer bandwidth (125 MB/s = the paper's 1 Gbps
        ToR links).
    """
    if mem_per_capacity_mb <= 0:
        raise ConfigurationError(
            f"mem_per_capacity_mb must be positive, got {mem_per_capacity_mb}"
        )
    if not (0.0 <= dirty_fraction < 1.0):
        raise ConfigurationError(
            f"dirty_fraction must be in [0, 1), got {dirty_fraction}"
        )
    pl = cluster.placement
    timelines: List[MigrationTimeline] = []
    infeasible: List[int] = []
    for vm, _host, _cost in moves:
        memory = float(pl.vm_capacity[vm]) * mem_per_capacity_mb
        try:
            tl = precopy_timeline(
                memory=memory,
                dirty_rate=dirty_fraction * bandwidth_mbps,
                bandwidth=bandwidth_mbps,
                downtime_target=downtime_target,
            )
        except MigrationError:
            infeasible.append(int(vm))
            continue
        timelines.append(tl)
    return PlanTiming(
        timelines=tuple(timelines),
        total_transfer_mb=float(sum(t.transferred for t in timelines)),
        makespan_s=float(max((t.total for t in timelines), default=0.0)),
        worst_downtime_s=float(max((t.downtime for t in timelines), default=0.0)),
        infeasible=tuple(infeasible),
    )
