"""Global optimal (centralized) manager — the Figs. 11–14 comparator.

The centralized manager sees every alerting VM in the DCN at once and
computes a minimum-total-cost assignment of those VMs to *all* feasible
hosts (global minimal weighted matching over the full cost matrix).  Its
plan cost lower-bounds any regional plan built from the same candidate
set, at the price of a search space of |candidates| × |all hosts|.

Large instances use :func:`scipy.optimize.linear_sum_assignment` (the
reference oracle our from-scratch Hungarian is validated against); small
ones run through :func:`repro.migration.matching.hungarian` so the
baseline also exercises the library's own kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.cluster.cluster import Cluster
from repro.costs.model import CostModel
from repro.errors import ConfigurationError, MigrationError
from repro.migration.matching import hungarian
from repro.obs.events import MatchingSolved
from repro.obs.profiling import NULL_PROFILER
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["CentralizedPlan", "centralized_migration_round"]

_OWN_KERNEL_LIMIT = 220  # rows beyond which the scipy oracle takes over


@dataclass
class CentralizedPlan:
    """Result of one centralized planning round."""

    moves: List[Tuple[int, int, float]] = field(default_factory=list)
    total_cost: float = 0.0
    search_space: int = 0
    unplaced: List[int] = field(default_factory=list)

    @property
    def migrations(self) -> int:
        return len(self.moves)


def centralized_migration_round(
    cluster: Cluster,
    cost_model: CostModel,
    candidates: Sequence[int],
    *,
    apply: bool = False,
    forbid_same_host: bool = True,
    balance_weight: float = 0.0,
    tracer: Tracer = NULL_TRACER,
    profiler=NULL_PROFILER,
) -> CentralizedPlan:
    """Plan (and optionally apply) the globally optimal migration round.

    Parameters
    ----------
    candidates:
        Alerting VM ids (the same set a Sheriff round would receive).
    apply:
        Mutate the cluster placement with the plan.  Benchmarks comparing
        against Sheriff plan on a *clone* instead (``apply=False``).
    forbid_same_host:
        Disallow assigning a VM to the host it already occupies (a no-op
        "migration" has no meaning in Alg. 3).
    balance_weight:
        Optional load-aware steering, as in
        :func:`repro.migration.vmmigration.vmmigration`.  Defaults to 0 so
        the manager stays the pure cost-optimal oracle of Figs. 11/13;
        plan costs always report the true Eq. (1) value.
    tracer, profiler:
        Optional observability handles: the global matching solve emits
        one :class:`~repro.obs.events.MatchingSolved` and is timed under
        the ``matching`` profiler section.
    """
    plan = CentralizedPlan()
    vms = [int(v) for v in dict.fromkeys(candidates)]
    if not vms:
        return plan
    pl = cluster.placement
    n_hosts = pl.num_hosts
    hosts = np.arange(n_hosts)
    free = np.asarray([pl.free_capacity(h) for h in range(n_hosts)])
    host_racks = pl.host_rack

    steer = balance_weight * (pl.host_used / pl.host_capacity)
    cost = np.full((len(vms), n_hosts), np.inf)
    true_cost = np.full((len(vms), n_hosts), np.inf)
    for r, vm in enumerate(vms):
        per_rack = cost_model.migration_cost_vector(vm)
        need = int(pl.vm_capacity[vm])
        feasible = free >= need
        if forbid_same_host:
            feasible = feasible.copy()
            feasible[int(pl.vm_host[vm])] = False
        true_cost[r, feasible] = per_rack[host_racks[feasible]]
        cost[r, feasible] = true_cost[r, feasible] + steer[feasible]
    plan.search_space = cost.size

    has_dest = np.isfinite(cost).any(axis=1)
    rows = np.nonzero(has_dest)[0]
    plan.unplaced = [vms[i] for i in np.nonzero(~has_dest)[0]]
    if rows.size == 0:
        return plan
    sub = cost[rows]
    # replace inf with a large sentinel for the scipy oracle, then drop any
    # matched-forbidden pairs afterwards
    t_solve = perf_counter() if tracer.enabled else 0.0
    fallback = False
    with profiler.section("matching"):
        if rows.size > _OWN_KERNEL_LIMIT:
            finite_max = sub[np.isfinite(sub)].max() if np.isfinite(sub).any() else 1.0
            sentinel = finite_max * len(vms) * 10 + 1.0
            filled = np.where(np.isfinite(sub), sub, sentinel)
            rr, cc = linear_sum_assignment(filled)
            pairs = [(int(r), int(c)) for r, c in zip(rr, cc) if np.isfinite(sub[r, c])]
        else:
            try:
                assignment, _ = hungarian(sub)
                pairs = [
                    (k, int(c)) for k, c in enumerate(assignment) if np.isfinite(sub[k, c])
                ]
            except MigrationError:
                fallback = True
                finite_max = sub[np.isfinite(sub)].max() if np.isfinite(sub).any() else 1.0
                sentinel = finite_max * len(vms) * 10 + 1.0
                filled = np.where(np.isfinite(sub), sub, sentinel)
                rr, cc = linear_sum_assignment(filled)
                pairs = [(int(r), int(c)) for r, c in zip(rr, cc) if np.isfinite(sub[r, c])]
    if tracer.enabled:
        tracer.emit(
            MatchingSolved(
                rows=int(rows.size),
                cols=int(n_hosts),
                matched=len(pairs),
                iteration=1,
                fallback=fallback,
                elapsed_s=perf_counter() - t_solve,
            )
        )

    for k, host in pairs:
        vm = vms[int(rows[k])]
        c = float(true_cost[rows[k], host])
        plan.moves.append((vm, int(host), c))
        plan.total_cost += c
    matched_vms = {m[0] for m in plan.moves}
    plan.unplaced.extend(v for i, v in enumerate(vms) if has_dest[i] and v not in matched_vms)

    if apply:
        for vm, host, _ in plan.moves:
            cluster.placement.migrate(vm, host)
    return plan
