"""Switch failure injection and recovery.

The paper scopes crash errors out ("we assume that they could be resolved
by backup system") — this module *is* that backup path, so the robustness
claim can actually be exercised: when a switch dies,

1. every flow traversing it is rerouted on the surviving fabric (flows
   with no alternative are dropped and reported);
2. the migration cost model is rebuilt with the dead switch's links
   removed, so subsequent VMMIGRATION plans route around it;
3. rack-level connectivity is re-checked — a partitioned fabric is
   reported rather than silently mis-planned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.costs.model import CostModel, CostParams
from repro.errors import TopologyError
from repro.migration.reroute import FlowTable, flow_reroute
from repro.topology.base import Topology

__all__ = ["FailureReport", "FailureInjector"]


@dataclass
class FailureReport:
    """Outcome of one failure or recovery event."""

    switch: int
    flows_rerouted: int = 0
    flows_dropped: List[int] = field(default_factory=list)
    flows_readmitted: List[int] = field(default_factory=list)
    racks_disconnected: List[int] = field(default_factory=list)


class FailureInjector:
    """Tracks failed switches and keeps dependent state consistent.

    Parameters
    ----------
    cluster:
        The cluster whose fabric suffers the failures.
    flow_table:
        Optional shared flow registry to repair on failure.
    cost_params:
        Parameters for rebuilding the cost model.
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        flow_table: Optional[FlowTable] = None,
        cost_params: Optional[CostParams] = None,
    ) -> None:
        self.cluster = cluster
        self.flow_table = flow_table
        self.cost_params = cost_params or CostParams()
        self.failed: Set[int] = set()
        # (vm, src_rack, dst_rack, rate) of flows dropped for want of a
        # path; re-admission candidates for recover()
        self._dropped: List[Tuple[int, int, int, float]] = []

    # ------------------------------------------------------------------ #
    def _affected_edges(self) -> np.ndarray:
        """Boolean mask over links: touches any failed switch."""
        lt = self.cluster.topology.links
        mask = np.zeros(len(lt), dtype=bool)
        for sw in self.failed:
            mask |= (lt.u == sw) | (lt.v == sw)
        return mask

    def available_bandwidth(self) -> np.ndarray:
        """Per-link bandwidth with failed switches' links at zero."""
        lt = self.cluster.topology.links
        bw = lt.capacity.copy()
        bw[self._affected_edges()] = 0.0
        return bw

    def fail(self, switch: int) -> FailureReport:
        """Kill *switch*; repair flows; report consequences."""
        topo = self.cluster.topology
        if not (topo.num_racks <= switch < topo.num_nodes):
            raise TopologyError(
                f"{switch} is not a switch node "
                f"(switches are {topo.num_racks}..{topo.num_nodes - 1})"
            )
        if switch in self.failed:
            raise TopologyError(f"switch {switch} already failed")
        self.failed.add(switch)
        report = FailureReport(switch=switch)

        if self.flow_table is not None:
            through = [
                f.flow_id for f in self.flow_table.flows_through(switch)
            ]
            ok, failed_flows = flow_reroute(
                self.flow_table, through, set(self.failed)
            )
            report.flows_rerouted = ok
            if failed_flows:
                # no surviving path: drop the flows that still cross a
                # failed switch (they cannot be carried)
                for fid in through:
                    flow = self.flow_table.flows.get(fid)
                    if flow is not None and any(
                        n in self.failed for n in flow.path
                    ):
                        self._dropped.append(
                            (flow.vm, flow.src_rack, flow.dst_rack, flow.rate)
                        )
                        self.flow_table.remove_flow(fid)
                        report.flows_dropped.append(fid)

        report.racks_disconnected = self.disconnected_racks()
        return report

    def recover(self, switch: int) -> FailureReport:
        """Bring *switch* back; re-admit what the outage dropped.

        Flows dropped by :meth:`fail` for want of a surviving path are
        re-registered and routed on the restored fabric; a flow whose path
        would still cross a *different* failed switch is rerouted around
        it, and dropped again (kept for the next recovery) if no detour
        exists.  Surviving flows re-optimize lazily on the next reroute.
        Returns a report with ``flows_readmitted`` and the remaining
        partition state; the caller rebuilds the cost model (see
        :meth:`rebuild_cost_model`) exactly as it does after :meth:`fail`.
        """
        if switch not in self.failed:
            raise TopologyError(f"switch {switch} is not failed")
        self.failed.discard(switch)
        report = FailureReport(switch=switch)

        if self.flow_table is not None and self._dropped:
            still_dropped: List[Tuple[int, int, int, float]] = []
            for vm, src_rack, dst_rack, rate in self._dropped:
                fid = self.flow_table.add_flow(vm, src_rack, dst_rack, rate)
                flow = self.flow_table.flows[fid]
                if any(n in self.failed for n in flow.path):
                    ok, _bad = flow_reroute(self.flow_table, [fid], self.failed)
                    if not ok:
                        self.flow_table.remove_flow(fid)
                        still_dropped.append((vm, src_rack, dst_rack, rate))
                        continue
                report.flows_readmitted.append(fid)
            self._dropped = still_dropped

        report.racks_disconnected = self.disconnected_racks()
        return report

    # ------------------------------------------------------------------ #
    def disconnected_racks(self) -> List[int]:
        """Racks with no surviving path to rack 0 (or to any other rack)."""
        topo = self.cluster.topology
        n = topo.num_nodes
        alive = np.ones(n, dtype=bool)
        alive[list(self.failed)] = False
        # BFS over surviving nodes from the first alive rack
        start = next((r for r in range(topo.num_racks) if alive[r]), None)
        if start is None:
            return list(range(topo.num_racks))
        seen = np.zeros(n, dtype=bool)
        stack = [start]
        seen[start] = True
        while stack:
            u = stack.pop()
            for v in topo.neighbors(u):
                if alive[v] and not seen[v]:
                    seen[v] = True
                    stack.append(int(v))
        return [r for r in range(topo.num_racks) if not seen[r]]

    def rebuild_cost_model(self) -> CostModel:
        """Cost model over the surviving fabric.

        Raises :class:`TopologyError` when the failures partitioned the
        rack fabric — planning over a partition would silently produce
        infinite costs.
        """
        dead = self.disconnected_racks()
        if dead:
            raise TopologyError(
                f"fabric partitioned: racks {dead[:5]} unreachable; "
                "recover a switch before re-planning"
            )
        return CostModel(
            self.cluster,
            self.cost_params,
            available_bandwidth=self.available_bandwidth(),
        )
