"""Simulation metrics (the y-axes of Figs. 9–14).

* Workload balance: std-dev of per-host load percentages over rounds;
* Search space: candidate (VM, destination) pairs a manager examines —
  regional Sheriff pairs each shim's candidates with its neighbor racks'
  hosts only, a centralized manager pairs every candidate with every host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.shim import neighbor_racks
from repro.errors import ConfigurationError

__all__ = [
    "BalanceSeries",
    "search_space_regional",
    "search_space_centralized",
    "jain_fairness",
    "gini_coefficient",
    "time_above_threshold",
]


@dataclass
class BalanceSeries:
    """Workload std-dev trajectory across migration rounds."""

    values: List[float] = field(default_factory=list)

    def record(self, cluster: Cluster) -> float:
        v = cluster.workload_std()
        self.values.append(v)
        return v

    def as_array(self) -> np.ndarray:
        return np.asarray(self.values)

    @property
    def improvement(self) -> float:
        """Absolute drop from the first to the last recorded value."""
        if len(self.values) < 2:
            return 0.0
        return self.values[0] - self.values[-1]


def search_space_regional(
    cluster: Cluster, candidates_by_rack: Dict[int, Sequence[int]]
) -> int:
    """Pairs examined by regional Sheriff.

    Each shim matches its candidate VMs against hosts in its one-hop
    neighbor racks only.
    """
    pl = cluster.placement
    total = 0
    for rack, cands in candidates_by_rack.items():
        if not (0 <= rack < cluster.num_racks):
            raise ConfigurationError(f"unknown rack {rack}")
        nbrs = neighbor_racks(cluster.topology, rack)
        n_hosts = int(np.isin(pl.host_rack, list(nbrs)).sum())
        total += len(cands) * n_hosts
    return total


def search_space_centralized(cluster: Cluster, num_candidates: int) -> int:
    """Pairs examined by a centralized manager: every candidate × every host."""
    if num_candidates < 0:
        raise ConfigurationError(f"num_candidates must be >= 0, got {num_candidates}")
    return num_candidates * cluster.num_hosts


def jain_fairness(loads: np.ndarray) -> float:
    """Jain's fairness index of per-host loads: 1 = perfectly balanced.

    ``J = (Σx)² / (n · Σx²)``; ranges from ``1/n`` (one host carries
    everything) to 1 (uniform).  A scale-free companion to the paper's
    std-dev metric for Figs. 9/10-style analyses.
    """
    x = np.asarray(loads, dtype=np.float64).ravel()
    if x.size == 0:
        raise ConfigurationError("empty load vector")
    if (x < 0).any():
        raise ConfigurationError("loads must be non-negative")
    denom = x.size * float(np.dot(x, x))
    if denom == 0:
        return 1.0  # all-zero fleet is trivially fair
    return float(x.sum() ** 2 / denom)


def gini_coefficient(loads: np.ndarray) -> float:
    """Gini coefficient of per-host loads: 0 = uniform, →1 = concentrated."""
    x = np.sort(np.asarray(loads, dtype=np.float64).ravel())
    if x.size == 0:
        raise ConfigurationError("empty load vector")
    if (x < 0).any():
        raise ConfigurationError("loads must be non-negative")
    total = x.sum()
    if total == 0:
        return 0.0
    n = x.size
    # standard closed form over the sorted sample
    idx = np.arange(1, n + 1)
    return float((2.0 * np.dot(idx, x) - (n + 1) * total) / (n * total))


def time_above_threshold(
    load_series: Sequence[np.ndarray], threshold: float
) -> np.ndarray:
    """Per-host count of rounds spent above *threshold*.

    *load_series* is an iterable of per-round host-load vectors (as
    produced by :meth:`DemandDrivenWorkload.host_load`); the result is the
    per-host overload exposure the pre-alert ablation aggregates.
    """
    if not (0.0 < threshold <= 1.0):
        raise ConfigurationError(f"threshold must be in (0, 1], got {threshold}")
    mats = [np.asarray(v, dtype=np.float64).ravel() for v in load_series]
    if not mats:
        raise ConfigurationError("empty load series")
    n = mats[0].shape[0]
    if any(m.shape[0] != n for m in mats):
        raise ConfigurationError("all rounds must cover the same hosts")
    stack = np.stack(mats)
    return (stack > threshold).sum(axis=0).astype(np.int64)
