"""In-flight migrations: live-migration duration in the round engine.

The base engine commits migrations instantaneously and approximates the
migration window with a cooldown.  This module models Fig. 2 properly:

* when a migration is accepted, the **destination capacity is reserved
  immediately** (the Reservation stage) while the VM keeps running — and
  consuming capacity — at the source (pre-copy runs with the VM live);
* the move **completes after the six-stage timeline elapses**, measured
  in management rounds; only then does the placement change and the
  source capacity free up;
* a VM in flight can neither migrate again nor accept a second
  reservation.

During the window the fleet genuinely holds 2× the VM's capacity — the
real cost of live migration the paper's ``C_r`` abstracts away.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.costs.precopy import MigrationTimeline, precopy_timeline
from repro.errors import ConfigurationError, MigrationError
from repro.migration.request import ReceiverRegistry
from repro.obs.events import MigrationCommitted, RequestRejected
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["MigrationTiming", "InFlightTracker", "TimedReceiverRegistry"]


@dataclass(frozen=True)
class MigrationTiming:
    """How VM size maps to migration duration (see :mod:`repro.costs.precopy`)."""

    mem_per_capacity_mb: float = 128.0
    dirty_fraction: float = 0.08
    bandwidth_mbps: float = 125.0
    round_seconds: float = 60.0
    downtime_target: float = 0.06

    def rounds_for(self, capacity: int) -> Tuple[int, MigrationTimeline]:
        """Rounds the migration of a *capacity*-sized VM occupies (>= 1)."""
        tl = precopy_timeline(
            memory=capacity * self.mem_per_capacity_mb,
            dirty_rate=self.dirty_fraction * self.bandwidth_mbps,
            bandwidth=self.bandwidth_mbps,
            downtime_target=self.downtime_target,
        )
        return max(1, math.ceil(tl.total / self.round_seconds)), tl


@dataclass
class _InFlight:
    vm: int
    src_host: int
    dst_host: int
    complete_round: int
    timeline: MigrationTimeline


class InFlightTracker:
    """Tracks migrations between acceptance and completion."""

    def __init__(self, cluster: Cluster, timing: MigrationTiming) -> None:
        self.cluster = cluster
        self.timing = timing
        self._active: Dict[int, _InFlight] = {}  # vm -> record
        self._holds: Dict[int, int] = {}  # dst host -> reserved capacity

    # ------------------------------------------------------------------ #
    @property
    def vms_in_flight(self) -> frozenset:
        return frozenset(self._active)

    def hold_on(self, host: int) -> int:
        """Capacity currently reserved on *host* by in-flight arrivals."""
        return self._holds.get(host, 0)

    def start(self, vm: int, dst_host: int, now: int) -> int:
        """Begin a migration; returns its completion round.

        The destination hold is taken immediately; the placement is not
        touched until :meth:`complete_due`.
        """
        if vm in self._active:
            raise MigrationError(f"vm {vm} is already in flight")
        pl = self.cluster.placement
        need = int(pl.vm_capacity[vm])
        free = pl.free_capacity(dst_host) - self.hold_on(dst_host)
        if free < need:
            raise MigrationError(
                f"host {dst_host} lacks {need} free (has {free}) for vm {vm}"
            )
        rounds, tl = self.timing.rounds_for(need)
        rec = _InFlight(
            vm=vm,
            src_host=int(pl.vm_host[vm]),
            dst_host=dst_host,
            complete_round=now + rounds,
            timeline=tl,
        )
        self._active[vm] = rec
        self._holds[dst_host] = self.hold_on(dst_host) + need
        return rec.complete_round

    def abort(self, vm: int) -> _InFlight:
        """Cancel *vm*'s in-flight migration, releasing its destination hold.

        The placement is untouched (the VM never left its source), so an
        abort is a pure rollback of the Reservation stage.  Returns the
        cancelled record; raises :class:`MigrationError` if *vm* is not in
        flight.
        """
        rec = self._active.pop(vm, None)
        if rec is None:
            raise MigrationError(f"vm {vm} is not in flight")
        need = int(self.cluster.placement.vm_capacity[vm])
        self._holds[rec.dst_host] -= need
        if self._holds[rec.dst_host] <= 0:
            del self._holds[rec.dst_host]
        return rec

    def records_due(self, now: int) -> List[_InFlight]:
        """Read-only records of migrations that will land at *now*.

        Same order as :meth:`complete_due`; lets pre-landing bookkeeping
        (e.g. the SLO accountant) see each VM's source host and pre-copy
        timeline before the placement mutates.
        """
        return [
            self._active[vm]
            for vm in sorted(self._active)
            if self._active[vm].complete_round <= now
        ]

    def complete_due(self, now: int) -> List[Tuple[int, int]]:
        """Finish every migration whose window has elapsed.

        Returns the completed ``(vm, dst_host)`` pairs; the placement
        mutates here (the Fig. 2 Activation stage).
        """
        done: List[Tuple[int, int]] = []
        pl = self.cluster.placement
        for vm in sorted(self._active):
            rec = self._active[vm]
            if rec.complete_round <= now:
                need = int(pl.vm_capacity[vm])
                self._holds[rec.dst_host] -= need
                if self._holds[rec.dst_host] <= 0:
                    del self._holds[rec.dst_host]
                del self._active[vm]
                pl.migrate(vm, rec.dst_host)
                done.append((vm, rec.dst_host))
        return done


class TimedReceiverRegistry(ReceiverRegistry):
    """Alg. 4 receiver that starts timed migrations instead of instant moves.

    ACK semantics are unchanged (FCFS, capacity, conflict graph), but the
    capacity check additionally subtracts in-flight holds, requests for
    in-flight VMs are rejected outright, and ``commit_round`` hands the
    reservations to the :class:`InFlightTracker` rather than migrating.
    """

    def __init__(
        self,
        cluster: Cluster,
        tracker: InFlightTracker,
        *,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        super().__init__(cluster, tracer=tracer)
        self.tracker = tracker
        self._now = 0

    def set_round(self, now: int) -> None:
        self._now = now

    def request(self, vm: int, dst_host: int, dst_rack: int):
        from repro.migration.request import RequestOutcome

        if vm in self.tracker.vms_in_flight:
            if self.tracer.enabled:
                self.tracer.emit(
                    RequestRejected(
                        vm=vm, dst_host=dst_host, dst_rack=dst_rack,
                        reason="in-flight",
                    )
                )
            return RequestOutcome.REJECT
        pl = self.cluster.placement
        if 0 <= dst_host < pl.num_hosts:
            # fold the in-flight holds into the capacity check by
            # pre-promising them for the duration of this request
            extra = self.tracker.hold_on(dst_host)
            if extra:
                free = (
                    pl.free_capacity(dst_host)
                    - self._promised.get(dst_host, 0)
                    - extra
                )
                if 0 <= vm < pl.num_vms and free < int(pl.vm_capacity[vm]):
                    if self.tracer.enabled:
                        self.tracer.emit(
                            RequestRejected(
                                vm=vm, dst_host=dst_host, dst_rack=dst_rack,
                                reason="capacity-hold",
                            )
                        )
                    return RequestOutcome.REJECT
        return super().request(vm, dst_host, dst_rack)

    def commit_round(self) -> List[Tuple[int, int]]:
        """Start (not finish) every accepted migration; returns the pairs.

        Atomic like the base class: a failing :meth:`InFlightTracker.start`
        aborts every migration already started this commit before the error
        propagates.
        """
        started: List[Tuple[int, int]] = []
        try:
            for res in self._reservations:
                self.tracker.start(res.vm, res.host, self._now)
                started.append((res.vm, res.host))
                if self.tracer.enabled:
                    self.tracer.emit(
                        MigrationCommitted(vm=res.vm, dst_host=res.host)
                    )
        except Exception as exc:
            for vm, _host in reversed(started):
                self.tracker.abort(vm)
            self.reset_round()
            from repro.errors import ProtocolError

            raise ProtocolError(
                f"timed commit aborted; {len(started)} started migrations "
                "cancelled"
            ) from exc
        self.reset_round()
        return started

    def commit_round_tolerant(
        self,
    ) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int, str]]]:
        """Start what can be started; report per-reservation failures.

        Degraded-mode variant for fault-injection runs: a reservation that
        cannot start (non-convergent pre-copy, destination died) is skipped
        and reported instead of aborting the round.
        """
        started: List[Tuple[int, int]] = []
        failed: List[Tuple[int, int, str]] = []
        for res in self._reservations:
            try:
                self.tracker.start(res.vm, res.host, self._now)
            except (MigrationError, ConfigurationError) as exc:
                failed.append((res.vm, res.host, str(exc)))
                continue
            started.append((res.vm, res.host))
            if self.tracer.enabled:
                self.tracer.emit(MigrationCommitted(vm=res.vm, dst_host=res.host))
        self.reset_round()
        return started, failed
