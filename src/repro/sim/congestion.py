"""Switch congestion detection and outer-switch alert generation.

Sec. III-B case 3: switches signal congestion (via DSCP bits / QCN
feedback); a shim that learns an *outer* switch on its flows' paths is
hot selects flows with PRIORITY(F, α) and reroutes them around the
switch — migration only if rerouting cannot help.

This module closes the loop in simulation: given the shared
:class:`~repro.migration.reroute.FlowTable`, it measures per-switch flow
load against capacity, marks hot switches, and addresses an
``OUTER_SWITCH`` alert to every rack that originates flows through them
(the racks that can actually do something about it).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.alerts.alert import Alert, AlertKind
from repro.cluster.cluster import Cluster
from repro.errors import ConfigurationError
from repro.migration.reroute import FlowTable
from repro.topology.base import Topology

__all__ = ["switch_capacity", "hot_switches", "congestion_alerts"]


def switch_capacity(topology: Topology) -> np.ndarray:
    """Aggregate link capacity per node — the load a switch can carry.

    A switch saturates when the flow load through it approaches the sum
    of its link capacities (every unit of traversing flow crosses two of
    its ports; the factor cancels in the ratio against a same-convention
    threshold).
    """
    lt = topology.links
    cap = np.zeros(topology.num_nodes)
    np.add.at(cap, lt.u, lt.capacity)
    np.add.at(cap, lt.v, lt.capacity)
    return cap


def hot_switches(
    topology: Topology,
    flow_table: FlowTable,
    utilization_threshold: float = 0.7,
) -> List[int]:
    """Switch ids whose flow load exceeds the capacity fraction."""
    if not (0.0 < utilization_threshold <= 1.0):
        raise ConfigurationError(
            f"utilization_threshold must be in (0, 1], got {utilization_threshold}"
        )
    cap = switch_capacity(topology)
    load = flow_table.node_load
    hot: List[int] = []
    for sw in topology.switches():
        c = cap[sw]
        if c > 0 and load[sw] / c > utilization_threshold:
            hot.append(int(sw))
    return hot


def congestion_alerts(
    cluster: Cluster,
    flow_table: FlowTable,
    *,
    utilization_threshold: float = 0.7,
    time: int = 0,
) -> Tuple[List[Alert], Dict[int, float]]:
    """OUTER_SWITCH alerts for every (hot switch, originating rack) pair.

    Returns the same ``(alerts, vm_alerts)`` contract as the other
    scenario functions; ``vm_alerts`` carries, for each VM with flows
    through a hot switch, the worst utilization ratio among those
    switches — PRIORITY's selection signal.
    """
    topo = cluster.topology
    cap = switch_capacity(topo)
    alerts: List[Alert] = []
    vm_alerts: Dict[int, float] = {}
    for sw in hot_switches(topo, flow_table, utilization_threshold):
        ratio = float(min(1.0, flow_table.node_load[sw] / cap[sw]))
        racks = sorted({f.src_rack for f in flow_table.flows_through(sw)})
        for rack in racks:
            alerts.append(
                Alert(
                    kind=AlertKind.OUTER_SWITCH,
                    rack=rack,
                    magnitude=ratio,
                    switch=sw,
                    time=time,
                )
            )
        for f in flow_table.flows_through(sw):
            vm_alerts[f.vm] = max(vm_alerts.get(f.vm, 0.0), ratio)
    return alerts, vm_alerts
