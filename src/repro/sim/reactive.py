"""Contingency (reactive) management and the demand-driven harness.

The paper's core argument (Sec. I) is pre-control vs contingency: existing
schemes migrate VMs *after* detecting overload, Sheriff *before*.  To
measure that difference we need load that varies over time:

* :class:`DemandDrivenWorkload` attaches a
  :class:`~repro.traces.workload.WorkloadStream` to every VM; a host's
  effective utilization at round ``t`` is the capacity-weighted mean of
  its VMs' current demand, so migrating a hot VM genuinely cools the host.
* :class:`ReactiveManager` raises alerts only from *current* overload
  (what a QCN/threshold monitor sees);
* the pre-alert counterpart (driven by
  :func:`repro.sim.scenario.forecast_alert_round`) predicts the next round
  and acts one step earlier.

The ablation benchmark counts host-overload-rounds under each policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.alerts.alert import Alert, AlertKind
from repro.cluster.cluster import Cluster
from repro.cluster.resources import NUM_RESOURCES
from repro.errors import ConfigurationError, ReproError
from repro.traces.workload import WorkloadStream

__all__ = ["DemandDrivenWorkload", "ReactiveManager", "PredictiveManager"]


class _StreamDict(dict):
    """Stream mapping that invalidates the owner's utilization cache."""

    _owner: Optional["DemandDrivenWorkload"] = None

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        if self._owner is not None:
            self._owner._build_util_cache()


class DemandDrivenWorkload:
    """Time-varying per-VM demand bound to a cluster.

    Parameters
    ----------
    streams:
        One stream per VM id; every VM of the cluster must be covered.
    """

    def __init__(self, cluster: Cluster, streams: Dict[int, WorkloadStream]) -> None:
        n = cluster.num_vms
        missing = [v for v in range(n) if v not in streams]
        if missing:
            raise ConfigurationError(
                f"streams missing for VMs {missing[:5]} (+{max(0, len(missing) - 5)} more)"
            )
        self.cluster = cluster
        self.streams = _StreamDict(streams)
        self.streams._owner = self
        self._util_matrix: Optional[np.ndarray] = None
        self._build_util_cache()

    def _build_util_cache(self) -> None:
        """Stack per-VM max-component series into a (T, vms) matrix.

        Only possible when every stream has the same length; each round's
        utilization then becomes one row view instead of an O(vms) Python
        loop — the hot path of paper-scale demand simulations.  Rebuilt
        whenever a stream is replaced.
        """
        n = self.cluster.num_vms
        lengths = {self.streams[v].length for v in range(n)} if n else set()
        if len(lengths) == 1:
            T = lengths.pop()
            self._util_matrix = np.empty((T, n))
            for vm in range(n):
                self._util_matrix[:, vm] = self.streams[vm].profile.max(axis=1)
        else:
            self._util_matrix = None

    def vm_utilization(self, t: int) -> np.ndarray:
        """Per-VM scalar demand at round *t*: the max profile component.

        The max mirrors the ALERT semantics — a VM pegged on any one
        resource stresses its host.
        """
        if self._util_matrix is not None:
            row = min(t, self._util_matrix.shape[0] - 1)
            return self._util_matrix[row].copy()
        n = self.cluster.num_vms
        out = np.empty(n)
        for vm in range(n):
            out[vm] = float(self.streams[vm].at(t).max())
        return out

    def host_load(self, t: int) -> np.ndarray:
        """Per-host effective utilization in [0, 1] at round *t*.

        Capacity-weighted VM demand over host capacity: a host packed with
        idle VMs is not overloaded, one with few hot VMs is.
        """
        pl = self.cluster.placement
        util = self.vm_utilization(t)
        demand = np.bincount(
            pl.vm_host,
            weights=util * pl.vm_capacity,
            minlength=pl.num_hosts,
        )
        return demand / pl.host_capacity

    def overloaded_hosts(self, t: int, threshold: float) -> np.ndarray:
        """Host ids whose effective load exceeds *threshold* at round *t*."""
        return np.nonzero(self.host_load(t) > threshold)[0]


class ReactiveManager:
    """Contingency alert source: alerts only from *observed* overload.

    Produces the same ``(alerts, vm_alerts)`` shape as the scenario
    functions so both policies share the migration machinery — the only
    difference under test is *when* they learn about trouble.
    """

    def __init__(self, workload: DemandDrivenWorkload, threshold: float = 0.9) -> None:
        if not (0.0 < threshold <= 1.0):
            raise ConfigurationError(f"threshold must be in (0, 1], got {threshold}")
        self.workload = workload
        self.threshold = threshold

    def alerts_at(self, t: int) -> Tuple[List[Alert], Dict[int, float]]:
        """SERVER alerts for hosts currently overloaded at round *t*."""
        cluster = self.workload.cluster
        pl = cluster.placement
        load = self.workload.host_load(t)
        util = self.workload.vm_utilization(t)
        alerts: List[Alert] = []
        vm_alerts: Dict[int, float] = {}
        for host in np.nonzero(load > self.threshold)[0]:
            rack = int(pl.host_rack[host])
            mag = float(min(1.0, load[host]))
            alerts.append(
                Alert(
                    kind=AlertKind.SERVER,
                    rack=rack,
                    magnitude=mag,
                    host=int(host),
                    time=t,
                )
            )
            for vm in pl.vms_on_host(int(host)):
                if not pl.vm_delay_sensitive[vm]:
                    vm_alerts[int(vm)] = float(min(1.0, util[vm]))
        return alerts, vm_alerts


class PredictiveManager:
    """Pre-alert source: alerts from *predicted* host overload.

    The paper's server-side ALERT means "host ``h_ij`` cannot afford the
    working load from its VMs" — an aggregate, per-host judgement.  This
    manager tracks each host's effective load series, forecasts it
    ``horizon`` rounds ahead with a per-host time-series model, and raises
    the SERVER alert as soon as the *predicted* load crosses the threshold
    — typically one or more rounds before a reactive manager would see the
    overload.

    Call :meth:`observe` once per round (after acting) so the forecasters
    track reality including the effect of migrations.

    Fleet-scale refitting: per-host model refits are independent, so
    :meth:`alerts_at` batches every *due* refit up front (optionally over
    a thread pool) instead of fitting lazily inside the per-host loop, and
    with *warm_start* each refit seeds its optimizer from the outgoing
    model's parameters — on slowly drifting load series this removes most
    of the optimizer iterations, which dominate paper-scale managed runs.
    """

    def __init__(
        self,
        workload: DemandDrivenWorkload,
        threshold: float = 0.9,
        *,
        horizon: int = 2,
        min_history: int = 12,
        refit_every: int = 10,
        forecaster_factory=None,
        warm_start: bool = True,
        workers: int = 0,
    ) -> None:
        if not (0.0 < threshold <= 1.0):
            raise ConfigurationError(f"threshold must be in (0, 1], got {threshold}")
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        if min_history < 6:
            raise ConfigurationError(f"min_history must be >= 6, got {min_history}")
        from repro.forecast.arima import ARIMA

        self.workload = workload
        self.threshold = threshold
        self.horizon = horizon
        self.min_history = min_history
        self.refit_every = refit_every
        self.warm_start = warm_start
        self.workers = workers
        self._factory = forecaster_factory or (lambda: ARIMA(1, 1, 0, maxiter=40))
        n_hosts = workload.cluster.num_hosts
        self._history: List[List[float]] = [[] for _ in range(n_hosts)]
        self._models: Dict[int, object] = {}
        self._since_fit: Dict[int, int] = {}
        self._last_assignment: Optional[np.ndarray] = None
        self._pool = None
        self.last_predicted: Optional[np.ndarray] = None
        """Per-host forecast array from the latest :meth:`alerts_at` call
        (the raw prediction, before the max-with-observed alert rule) —
        the signal :class:`~repro.sim.fallback.FallbackManager` scores."""

    def observe(self, t: int) -> None:
        """Record round *t*'s realized host loads.

        Hosts whose VM assignment changed since the last observation are
        reset first: a migration steps the load series, and extrapolating
        that step as a trend manufactures false alerts.  The shim knows
        its own assignment changed, so dropping the stale history is the
        honest model of what it can do.  While a host's history rebuilds,
        :meth:`alerts_at` still detects plain threshold crossings from the
        current load.
        """
        pl = self.workload.cluster.placement
        current_assignment = pl.vm_host
        if self._last_assignment is not None:
            changed_vms = np.nonzero(self._last_assignment != current_assignment)[0]
            for vm in changed_vms:
                self.reset_host(int(self._last_assignment[vm]))
                self.reset_host(int(current_assignment[vm]))
        self._last_assignment = current_assignment.copy()
        load = self.workload.host_load(t)
        for h, v in enumerate(load):
            self._history[h].append(float(v))
            model = self._models.get(h)
            if model is not None:
                model.append(float(v))
                self._since_fit[h] += 1

    def reset_host(self, host: int) -> None:
        """Drop *host*'s load history and model (assignment changed)."""
        self._history[host].clear()
        self._models.pop(host, None)
        self._since_fit.pop(host, None)

    def _refit_one(self, host: int):
        """Fit one host's model (pure given the host's history snapshot)."""
        from repro.forecast.base import warm_fit

        model = self._factory()
        previous = self._models.get(host) if self.warm_start else None
        warm_fit(model, np.asarray(self._history[host]), previous)
        return host, model

    def _refit_due(self) -> None:
        """Batch-refit every host whose model is missing or stale.

        Fits are independent of each other (each reads only its own host's
        history), so they can run on a thread pool; results are installed
        serially, keeping the manager's visible state deterministic.
        """
        due = [
            h
            for h in range(len(self._history))
            if len(self._history[h]) >= self.min_history
            and (h not in self._models or self._since_fit[h] >= self.refit_every)
        ]
        if not due:
            return
        if self.workers > 1 and len(due) > 1:
            if self._pool is None:
                from repro.parallel.pool import WorkerPool

                self._pool = WorkerPool(
                    self.workers, backend="thread", name="sheriff-fleet"
                )
            results, _ = self._pool.map_ordered(self._refit_one, due)
        else:
            results = [self._refit_one(h) for h in due]
        for host, model in results:
            self._models[host] = model
            self._since_fit[host] = 0

    def _predict(self, host: int) -> float:
        hist = self._history[host]
        if len(hist) < self.min_history:
            return hist[-1] if hist else 0.0
        model = self._models.get(host)
        if model is None or self._since_fit[host] >= self.refit_every:
            # fallback for direct callers; alerts_at batch-refits up front
            host, model = self._refit_one(host)
            self._models[host] = model
            self._since_fit[host] = 0
        try:
            f = model.forecast(self.horizon)
        except (ReproError, ValueError, np.linalg.LinAlgError):
            # a degenerate history can break a refit mid-run; falling back
            # to persistence mirrors what a production predictor would do
            return hist[-1]
        return float(np.clip(np.max(f), 0.0, 1.0))

    def _predict_all(self) -> np.ndarray:
        """Per-host predictions; bitwise ``[_predict(h) for h in hosts]``.

        Hosts holding a fresh fitted plain-ARIMA model (the default
        factory) are forecast through the stacked fleet kernel in one
        group per order; short histories and exotic models keep the scalar
        path.  A kernel failure falls back to the scalar oracle for the
        whole batch — the same values, member by member.
        """
        from repro.forecast.arima import ARIMA
        from repro.forecast.batch import batch_forecast

        preds = np.empty(len(self._history))
        batched: List[int] = []
        for host in range(len(self._history)):
            model = self._models.get(host)
            if (
                len(self._history[host]) >= self.min_history
                and type(model) is ARIMA
                and getattr(model, "_fitted", False)
                and self._since_fit[host] < self.refit_every
            ):
                batched.append(host)
            else:
                preds[host] = self._predict(host)
        if batched:
            try:
                fcasts = batch_forecast(
                    [self._models[h] for h in batched], self.horizon
                )
                for host, f in zip(batched, fcasts):
                    preds[host] = float(np.clip(np.max(f), 0.0, 1.0))
            except (ReproError, ValueError, np.linalg.LinAlgError):
                for host in batched:
                    preds[host] = self._predict(host)
        return preds

    def alerts_at(self, t: int) -> Tuple[List[Alert], Dict[int, float]]:
        """SERVER alerts for hosts whose predicted load crosses threshold."""
        self._refit_due()
        cluster = self.workload.cluster
        pl = cluster.placement
        util = self.workload.vm_utilization(t)
        current = self.workload.host_load(t)
        predicted = self._predict_all()
        self.last_predicted = predicted
        alerts: List[Alert] = []
        vm_alerts: Dict[int, float] = {}
        for host in range(pl.num_hosts):
            # prediction adds lead time but must never lose plain
            # threshold detection: alert on max(predicted, observed)
            pred = max(float(predicted[host]), float(current[host]))
            if pred <= self.threshold:
                continue
            rack = int(pl.host_rack[host])
            alerts.append(
                Alert(
                    kind=AlertKind.SERVER,
                    rack=rack,
                    magnitude=float(max(pred, 1e-3)),
                    host=host,
                    time=t,
                )
            )
            for vm in pl.vms_on_host(host):
                if not pl.vm_delay_sensitive[vm]:
                    vm_alerts[int(vm)] = float(min(1.0, util[vm]))
        return alerts, vm_alerts
