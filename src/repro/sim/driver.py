"""High-level driver for demand-driven managed runs.

The pre-alert-vs-reactive experiments all share one loop: advance the
demand clock, ask a manager (reactive or predictive) for alerts, run the
Sheriff round with measured host loads steering destinations, and keep
score.  :func:`run_managed_simulation` is that loop as a library call, so
examples, benchmarks and downstream users stop re-implementing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple, Union

import numpy as np

from repro.cluster.cluster import Cluster
from repro.config import SheriffConfig
from repro.errors import ConfigurationError
from repro.sim.engine import SheriffSimulation
from repro.sim.reactive import DemandDrivenWorkload, PredictiveManager

__all__ = ["AlertSource", "ManagedRunReport", "run_managed_simulation"]


class AlertSource(Protocol):
    """Anything that can produce a round's alerts (reactive/predictive)."""

    def alerts_at(self, t: int):  # pragma: no cover - protocol
        ...


@dataclass
class ManagedRunReport:
    """Score card of one managed run."""

    overload_rounds: int = 0
    migrations: int = 0
    total_cost: float = 0.0
    first_alert_round: Optional[int] = None
    overload_by_round: List[int] = field(default_factory=list)
    peak_load_by_round: List[float] = field(default_factory=list)
    timings: Dict[str, float] = field(default_factory=dict)
    """Cumulative wall-clock seconds per profiled section over the run."""

    @property
    def rounds(self) -> int:
        return len(self.overload_by_round)


def run_managed_simulation(
    sim: Union[SheriffSimulation, Cluster],
    workload: DemandDrivenWorkload,
    manager: AlertSource,
    *,
    warm: int,
    horizon: int,
    overload_threshold: float,
    config: Optional[SheriffConfig] = None,
) -> ManagedRunReport:
    """Drive *sim* from round ``warm`` to ``horizon`` under *manager*.

    Predictive managers (anything with ``observe``) are warmed on rounds
    ``0..warm-1`` first, then fed each round's realized loads after the
    management action — the same protocol a real shim follows.

    ``sim`` may be a ready :class:`SheriffSimulation` or a bare
    :class:`~repro.cluster.cluster.Cluster`; in the latter case one is
    built from *config* (or the defaults).  Passing *config* alongside a
    ready simulation is ambiguous and rejected.
    """
    if isinstance(sim, Cluster):
        sim = SheriffSimulation(sim, config)
    elif config is not None:
        raise ConfigurationError(
            "pass config only with a Cluster; a ready SheriffSimulation "
            "already carries its own"
        )
    if not (0 <= warm < horizon):
        raise ConfigurationError(f"need 0 <= warm < horizon, got {warm}/{horizon}")
    if not (0.0 < overload_threshold <= 1.0):
        raise ConfigurationError(
            f"overload_threshold must be in (0, 1], got {overload_threshold}"
        )
    observes = hasattr(manager, "observe")
    if observes:
        for t in range(warm):
            manager.observe(t)  # type: ignore[attr-defined]

    report = ManagedRunReport()
    for t in range(warm, horizon):
        load = workload.host_load(t)
        over = int((load > overload_threshold).sum())
        report.overload_rounds += over
        report.overload_by_round.append(over)
        report.peak_load_by_round.append(float(load.max()) if load.size else 0.0)

        alerts, magnitudes = manager.alerts_at(t)
        if alerts and report.first_alert_round is None:
            report.first_alert_round = t
        summary = sim.run_round(alerts, magnitudes, host_load=load)
        report.migrations += summary.migrations
        report.total_cost += summary.total_cost
        if observes:
            manager.observe(t)  # type: ignore[attr-defined]
    report.timings = sim.timing_breakdown()
    return report
