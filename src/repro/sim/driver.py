"""High-level driver for demand-driven managed runs.

The pre-alert-vs-reactive experiments all share one loop: advance the
demand clock, ask a manager (reactive or predictive) for alerts, run the
Sheriff round with measured host loads steering destinations, and keep
score.  :func:`run_managed_simulation` is that loop as a library call, so
examples, benchmarks and downstream users stop re-implementing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple, Union

import numpy as np

from repro.cluster.cluster import Cluster
from repro.config import SheriffConfig
from repro.errors import ConfigurationError
from repro.sim.engine import SheriffSimulation
from repro.sim.reactive import DemandDrivenWorkload, PredictiveManager

__all__ = ["AlertSource", "ManagedRunReport", "run_managed_simulation"]


class AlertSource(Protocol):
    """Anything that can produce a round's alerts (reactive/predictive)."""

    def alerts_at(self, t: int):  # pragma: no cover - protocol
        ...


@dataclass
class ManagedRunReport:
    """Score card of one managed run."""

    overload_rounds: int = 0
    migrations: int = 0
    total_cost: float = 0.0
    first_alert_round: Optional[int] = None
    overload_by_round: List[int] = field(default_factory=list)
    peak_load_by_round: List[float] = field(default_factory=list)
    fallback_rounds: int = 0
    """Rounds alerted by the reactive floor (fallback policy active)."""
    fallback_transitions: int = 0
    """Mode switches the fallback governor made over the run."""
    timings: Dict[str, float] = field(default_factory=dict)
    """Cumulative wall-clock seconds per profiled section over the run."""

    @property
    def rounds(self) -> int:
        return len(self.overload_by_round)


def run_managed_simulation(
    sim: Union[SheriffSimulation, Cluster],
    workload: DemandDrivenWorkload,
    manager: AlertSource,
    *,
    warm: int,
    horizon: int,
    overload_threshold: float,
    config: Optional[SheriffConfig] = None,
) -> ManagedRunReport:
    """Drive *sim* from round ``warm`` to ``horizon`` under *manager*.

    Predictive managers (anything with ``observe``) are warmed on rounds
    ``0..warm-1`` first, then fed each round's realized loads after the
    management action — the same protocol a real shim follows.

    ``sim`` may be a ready :class:`SheriffSimulation` or a bare
    :class:`~repro.cluster.cluster.Cluster`; in the latter case one is
    built from *config* (or the defaults).  Passing *config* alongside a
    ready simulation is ambiguous and rejected.

    When the simulation's config sets ``fallback_policy="reactive"`` and
    *manager* is an observing (predictive) source, it is wrapped in a
    :class:`~repro.sim.fallback.FallbackManager` so alerting degrades to
    the paper's reactive floor whenever trailing forecast error crosses
    the configured bound; ``fallback_policy="none"`` (the default) leaves
    the run byte-identical to the historical loop.
    """
    if isinstance(sim, Cluster):
        sim = SheriffSimulation(sim, config)
    elif config is not None:
        raise ConfigurationError(
            "pass config only with a Cluster; a ready SheriffSimulation "
            "already carries its own"
        )
    if not (0 <= warm < horizon):
        raise ConfigurationError(f"need 0 <= warm < horizon, got {warm}/{horizon}")
    if not (0.0 < overload_threshold <= 1.0):
        raise ConfigurationError(
            f"overload_threshold must be in (0, 1], got {overload_threshold}"
        )
    from repro.sim.fallback import FALLBACK_POLICIES, FallbackManager

    policy = sim.config.fallback_policy
    if policy not in FALLBACK_POLICIES:
        raise ConfigurationError(
            f"unknown fallback_policy {policy!r} "
            f"(expected one of {FALLBACK_POLICIES})"
        )
    fallback: Optional[FallbackManager] = None
    if (
        policy == "reactive"
        and hasattr(manager, "observe")
        and not isinstance(manager, FallbackManager)
    ):
        manager = FallbackManager.from_config(
            workload,
            manager,
            sim.config,
            threshold=overload_threshold,
            metrics=sim.metrics,
        )
    if isinstance(manager, FallbackManager):
        fallback = manager
    observes = hasattr(manager, "observe")
    if observes:
        for t in range(warm):
            manager.observe(t)  # type: ignore[attr-defined]

    report = ManagedRunReport()
    for t in range(warm, horizon):
        load = workload.host_load(t)
        over = int((load > overload_threshold).sum())
        report.overload_rounds += over
        report.overload_by_round.append(over)
        report.peak_load_by_round.append(float(load.max()) if load.size else 0.0)

        alerts, magnitudes = manager.alerts_at(t)
        if alerts and report.first_alert_round is None:
            report.first_alert_round = t
        summary = sim.run_round(alerts, magnitudes, host_load=load)
        report.migrations += summary.migrations
        report.total_cost += summary.total_cost
        if observes:
            manager.observe(t)  # type: ignore[attr-defined]
        if fallback is not None and fallback.degraded:
            report.fallback_rounds += 1
    if fallback is not None:
        report.fallback_transitions = fallback.transitions
    report.timings = sim.timing_breakdown()
    return report
