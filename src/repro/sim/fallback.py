"""Worst-case fallback arbitration for predictive alerting.

Sheriff's pre-alert pipeline is only as good as its forecasts; a
systematically wrong model pool can drive migrations *worse* than the
paper's reactive contingency baseline (Sec. I calls it "contingency
management").  Following the prediction-with-bounded-damage idea of
Credence (PAPERS.md), :class:`FallbackManager` arbitrates between a
predictive alert source and the reactive floor:

* every round, the predictive manager's forecasts are scored against the
  realized host loads; when the trailing mean absolute error over
  ``window`` rounds crosses ``error_bound``, alerting degrades to the
  reactive manager — whose behaviour is precisely the paper-Sheriff
  contingency scheme, independent of any forecast;
* while degraded, the predictive manager keeps running in shadow mode
  (observing, refitting, being scored); after ``recovery_rounds``
  consecutive rounds back at or under the bound, predictive alerting
  resumes.

This yields the worst-case bound the adversarial campaign
(:func:`repro.faults.run_adversarial_campaign`) demonstrates: a guarded
run can trail the reactive baseline only for the rounds the trailing
window needs to detect the breakdown, so its lost-VM/SLO metrics stay
within a configured factor of reactive Sheriff no matter how wrong the
model pool is.  With ``SheriffConfig.fallback_policy == "none"`` the
manager is never constructed and managed runs are byte-identical to the
historical engine.

Transitions are visible: each mode switch emits a
:class:`~repro.obs.events.FallbackTransition` trace event and increments
``sheriff_fallback_transitions_total{mode=...}``; degraded rounds count
in ``sheriff_fallback_rounds_total``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.alerts.alert import Alert
from repro.errors import ConfigurationError
from repro.obs.events import FallbackTransition
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.reactive import DemandDrivenWorkload, ReactiveManager

__all__ = ["FallbackManager", "FALLBACK_POLICIES"]

FALLBACK_POLICIES = ("none", "reactive")
"""Valid ``SheriffConfig.fallback_policy`` values."""


class FallbackManager:
    """Confidence-gated arbiter between predictive and reactive alerting.

    Parameters
    ----------
    workload:
        The demand model both managers read (realized loads score the
        forecasts).
    predictive:
        Any observing alert source exposing ``alerts_at``/``observe`` and
        (after ``alerts_at``) a ``last_predicted`` per-host array — e.g.
        :class:`~repro.sim.reactive.PredictiveManager`.
    reactive:
        The contingency floor; ``None`` builds a
        :class:`~repro.sim.reactive.ReactiveManager` at *threshold*.
    error_bound, window, recovery_rounds:
        The trigger/recovery hysteresis (see the module docstring).
    """

    def __init__(
        self,
        workload: DemandDrivenWorkload,
        predictive,
        reactive: Optional[ReactiveManager] = None,
        *,
        threshold: float = 0.9,
        error_bound: float = 0.15,
        window: int = 8,
        recovery_rounds: int = 4,
        tracer: Tracer = NULL_TRACER,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if error_bound <= 0.0:
            raise ConfigurationError(
                f"error_bound must be positive, got {error_bound}"
            )
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if recovery_rounds < 1:
            raise ConfigurationError(
                f"recovery_rounds must be >= 1, got {recovery_rounds}"
            )
        if not hasattr(predictive, "observe"):
            raise ConfigurationError(
                "fallback needs an observing (predictive) alert source"
            )
        self.workload = workload
        self.predictive = predictive
        self.reactive = (
            reactive
            if reactive is not None
            else ReactiveManager(workload, threshold=threshold)
        )
        self.error_bound = error_bound
        self.window = window
        self.recovery_rounds = recovery_rounds
        self.tracer = tracer
        self.metrics = metrics
        self.degraded = False
        self.transitions = 0
        self._errors: Deque[float] = deque(maxlen=window)
        self._pending: Dict[int, np.ndarray] = {}
        self._calm = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def from_config(
        cls,
        workload: DemandDrivenWorkload,
        predictive,
        config,
        *,
        threshold: float = 0.9,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "FallbackManager":
        """Build from the ``SheriffConfig`` fallback knobs."""
        if config.fallback_policy not in FALLBACK_POLICIES:
            raise ConfigurationError(
                f"unknown fallback_policy {config.fallback_policy!r} "
                f"(expected one of {FALLBACK_POLICIES})"
            )
        return cls(
            workload,
            predictive,
            threshold=threshold,
            error_bound=config.fallback_error_bound,
            window=config.fallback_window,
            recovery_rounds=config.fallback_recovery_rounds,
            tracer=config.tracer,
            metrics=metrics if metrics is not None else config.metrics,
        )

    # ------------------------------------------------------------------ #
    @property
    def trailing_error(self) -> float:
        """Windowed mean absolute forecast error (0 until first score)."""
        if not self._errors:
            return 0.0
        return float(np.mean(self._errors))

    def alerts_at(self, t: int) -> Tuple[List[Alert], dict]:
        """The active mode's alerts; the shadow forecast is always taken.

        The predictive manager runs every round — degraded or not — so
        its forecasts keep being scored and recovery stays possible.
        """
        predictive_alerts = self.predictive.alerts_at(t)
        predicted = getattr(self.predictive, "last_predicted", None)
        if predicted is not None:
            self._pending[t] = np.asarray(predicted, dtype=np.float64)
        if self.degraded:
            return self.reactive.alerts_at(t)
        return predictive_alerts

    def observe(self, t: int) -> None:
        """Score round *t*'s forecast, advance hysteresis, maybe switch."""
        self.predictive.observe(t)
        pending = self._pending.pop(t, None)
        if pending is not None:
            load = self.workload.host_load(t)
            if pending.shape == load.shape:
                self._errors.append(float(np.mean(np.abs(pending - load))))
        err = self.trailing_error
        if not self.degraded:
            if len(self._errors) == self.window and err > self.error_bound:
                self._switch("reactive", err, t)
                self._calm = 0
        else:
            if self.metrics is not None:
                self.metrics.counter("sheriff_fallback_rounds_total").inc()
            if err <= self.error_bound:
                self._calm += 1
                if self._calm >= self.recovery_rounds:
                    self._switch("predictive", err, t)
            else:
                self._calm = 0

    def _switch(self, mode: str, err: float, t: int) -> None:
        self.degraded = mode == "reactive"
        self.transitions += 1
        if self.tracer.enabled:
            self.tracer.emit(
                FallbackTransition(mode=mode, trailing_error=err, at_round=t)
            )
        if self.metrics is not None:
            self.metrics.counter(
                "sheriff_fallback_transitions_total", mode=mode
            ).inc()
