"""Demand-scenario factory.

The pre-alert experiments all need a :class:`DemandDrivenWorkload` with
some overload structure; building one by hand (pick hosts, schedule
ramps, seed streams) was re-implemented in every bench and example.
This module names the recurring shapes:

* :func:`steady_demand` — stationary diurnal load, no events;
* :func:`host_surges` — correlated per-host ramps (tenant-wide spikes),
  the pre-alert-vs-reactive workhorse;
* :func:`flash_crowd` — one rack's VMs all surge simultaneously (a viral
  service), stressing the β/ToR path;
* :func:`creeping_growth` — slow fleet-wide drift upward, the capacity-
  planning regime where long-horizon forecasts matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.resources import ResourceKind
from repro.errors import ConfigurationError
from repro.rng import SeedLike, as_generator
from repro.sim.reactive import DemandDrivenWorkload
from repro.traces.workload import WorkloadStream

__all__ = [
    "SurgeEvent",
    "steady_demand",
    "host_surges",
    "flash_crowd",
    "creeping_growth",
]


@dataclass(frozen=True)
class SurgeEvent:
    """One scheduled overload event."""

    host: int
    start: int
    ramp_len: int = 10
    peak: float = 0.95


def _streams(
    cluster: Cluster,
    horizon: int,
    ramps_for,
    *,
    base_level: float,
    diurnal_amplitude: float,
    wander_sigma: float,
    seed: SeedLike,
) -> DemandDrivenWorkload:
    """Build per-VM streams: batch path for quiet VMs, per-VM for ramped.

    The vectorized batch generator covers the (usually vast) majority of
    VMs without scheduled events; only VMs with ramps fall back to the
    per-stream generator so their injections stay exact.
    """
    if horizon < 16:
        raise ConfigurationError(f"horizon must be >= 16, got {horizon}")
    rng = as_generator(seed)
    pl = cluster.placement
    n = cluster.num_vms
    vm_ramps = {vm: ramps_for(vm, int(pl.vm_host[vm])) for vm in range(n)}
    from repro.traces.workload import generate_streams

    batch = generate_streams(
        n,
        horizon,
        base_level=base_level,
        diurnal_amplitude=diurnal_amplitude,
        wander_sigma=wander_sigma,
        burst_rate=0.0,
        seed=rng,
    )
    streams: Dict[int, WorkloadStream] = {}
    for vm in range(n):
        ramps = vm_ramps[vm]
        if ramps:
            streams[vm] = WorkloadStream.generate(
                horizon,
                base_level=base_level,
                diurnal_amplitude=diurnal_amplitude,
                burst_rate=0.0,
                wander_sigma=wander_sigma,
                ramps=ramps,
                seed=int(rng.integers(0, 2**31)),
            )
        else:
            streams[vm] = batch[vm]
    return DemandDrivenWorkload(cluster, streams)


def steady_demand(
    cluster: Cluster,
    horizon: int,
    *,
    base_level: float = 0.45,
    diurnal_amplitude: float = 0.08,
    wander_sigma: float = 0.005,
    seed: SeedLike = None,
) -> DemandDrivenWorkload:
    """Stationary fleet: diurnal base, no scheduled events."""
    return _streams(
        cluster,
        horizon,
        lambda vm, host: [],
        base_level=base_level,
        diurnal_amplitude=diurnal_amplitude,
        wander_sigma=wander_sigma,
        seed=seed,
    )


def host_surges(
    cluster: Cluster,
    horizon: int,
    *,
    fraction: float = 0.25,
    earliest: int,
    latest: int,
    ramp_len: int = 10,
    peak: float = 0.95,
    base_level: float = 0.45,
    diurnal_amplitude: float = 0.08,
    wander_sigma: float = 0.005,
    seed: SeedLike = None,
) -> Tuple[DemandDrivenWorkload, List[SurgeEvent]]:
    """Correlated surges on a random *fraction* of hosts.

    Every VM of a surging host ramps toward saturation at the same round
    — the tenant-wide spike that drives the pre-alert ablation.  Returns
    the workload plus the schedule so tests can assert against it.
    """
    if not (0.0 < fraction <= 1.0):
        raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
    if not (0 <= earliest < latest <= horizon):
        raise ConfigurationError(
            f"need 0 <= earliest < latest <= horizon, got {earliest}/{latest}/{horizon}"
        )
    rng = as_generator(seed)
    pl = cluster.placement
    n_surge = max(1, int(round(fraction * pl.num_hosts)))
    hosts = rng.choice(pl.num_hosts, size=n_surge, replace=False)
    events = [
        SurgeEvent(
            host=int(h),
            start=int(rng.integers(earliest, latest)),
            ramp_len=ramp_len,
            peak=peak,
        )
        for h in hosts
    ]
    by_host = {e.host: e for e in events}

    def ramps_for(vm: int, host: int):
        e = by_host.get(host)
        if e is None:
            return []
        return [(int(ResourceKind.CPU), e.start, e.ramp_len, e.peak)]

    wl = _streams(
        cluster,
        horizon,
        ramps_for,
        base_level=base_level,
        diurnal_amplitude=diurnal_amplitude,
        wander_sigma=wander_sigma,
        seed=rng,
    )
    return wl, events


def flash_crowd(
    cluster: Cluster,
    horizon: int,
    *,
    rack: int,
    start: int,
    ramp_len: int = 6,
    peak: float = 0.98,
    base_level: float = 0.4,
    seed: SeedLike = None,
) -> DemandDrivenWorkload:
    """Every VM in one rack surges at once (a viral service).

    This is the regime where single-host evictions cannot keep up and the
    shim's rack-level β selection (Eq. 10) is the right tool.
    """
    if not (0 <= rack < cluster.num_racks):
        raise ConfigurationError(f"unknown rack {rack}")
    if not (0 <= start < horizon):
        raise ConfigurationError(f"start must be in 0..{horizon - 1}, got {start}")
    pl = cluster.placement
    rack_hosts = set(int(h) for h in pl.hosts_in_rack(rack))

    def ramps_for(vm: int, host: int):
        if host in rack_hosts:
            return [(int(ResourceKind.TRF), start, ramp_len, peak)]
        return []

    return _streams(
        cluster,
        horizon,
        ramps_for,
        base_level=base_level,
        diurnal_amplitude=0.05,
        wander_sigma=0.005,
        seed=seed,
    )


def creeping_growth(
    cluster: Cluster,
    horizon: int,
    *,
    start_level: float = 0.35,
    end_level: float = 0.8,
    seed: SeedLike = None,
) -> DemandDrivenWorkload:
    """Fleet-wide slow upward drift from *start_level* to *end_level*."""
    if not (0.0 < start_level < end_level <= 1.0):
        raise ConfigurationError(
            f"need 0 < start_level < end_level <= 1, got {start_level}/{end_level}"
        )

    def ramps_for(vm: int, host: int):
        # one long shallow ramp across the whole horizon, every VM
        return [(int(ResourceKind.CPU), 0, horizon, end_level - start_level)]

    return _streams(
        cluster,
        horizon,
        ramps_for,
        base_level=start_level,
        diurnal_amplitude=0.05,
        wander_sigma=0.004,
        seed=seed,
    )
