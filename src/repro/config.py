"""The :class:`SheriffConfig` bundle — one object for every simulator knob.

Historically :class:`~repro.sim.engine.SheriffSimulation` (and the
managed-run helpers around it) grew seven loose keyword arguments plus a
cost-model handle.  ``SheriffConfig`` bundles them with the observability
handles (``tracer``, ``metrics``, ``profile``) so a whole experiment's
configuration travels as one value:

    from repro import SheriffConfig, SheriffSimulation

    cfg = SheriffConfig(balance_weight=25.0, with_flows=True)
    sim = SheriffSimulation(cluster, cfg)

The old keyword arguments still work on every accepting constructor but
raise :class:`DeprecationWarning`; they are folded into a config via
:func:`resolve_config`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING, Any, Dict, Optional, TextIO

from repro.obs.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import-cycle-free typing only
    from repro.costs.model import CostParams
    from repro.faults.channel import ChannelPolicy
    from repro.faults.schedule import FaultSchedule
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profiling import Profiler
    from repro.service.bus import EventBus
    from repro.sim.inflight import MigrationTiming

__all__ = ["SheriffConfig", "resolve_config", "LEGACY_SIM_KWARGS"]


@dataclass
class SheriffConfig:
    """Every knob of a Sheriff simulation, in one place.

    Parameters
    ----------
    cost_params:
        Eq. (1) cost-model constants (``None`` = paper defaults).
    alpha, beta:
        PRIORITY capacity portions for switch- and ToR-triggered
        selection (Alg. 2).
    balance_weight:
        Load-aware destination steering strength (Figs. 9/10 mechanism).
    migration_cooldown:
        Rounds a freshly-moved VM is frozen (anti-ping-pong).
    migration_timing:
        Live-migration window model; ``None`` = instant commits.
    with_flows, flow_rate:
        Build a dependency-derived :class:`~repro.migration.reroute.FlowTable`
        so outer-switch alerts can exercise FLOWREROUTE.
    workers:
        Per-round shim fan-out.  ``0`` (default) keeps the historical
        fully-interleaved serial loop; ``1`` runs the same plan/execute
        split as the parallel path but inline (useful for testing the
        equivalence); ``>= 2`` plans racks concurrently on a thread pool
        of that size.  ``-1`` is *auto*: rounds whose alerted-rack count
        stays below the pool break-even threshold
        (:data:`~repro.parallel.pool.AUTO_INLINE_TASK_THRESHOLD`) plan
        inline against the shared SoA snapshot — no pool is created until
        a round is actually wide enough to amortize one — and wider
        rounds fan out over a machine-sized pool.  All settings produce
        byte-identical results — only wall-clock and the timing breakdown
        change.
    planner:
        Which engine the non-serial plan phase runs on.  ``"thread"``
        (default) keeps the historical per-round thread fan-out with the
        ``workers=-1`` auto-inline heuristic.  ``"process"`` uses the
        persistent :class:`~repro.parallel.planner.PlannerPool`: worker
        processes fork once, attach once to shared-memory fleet segments
        (:class:`~repro.parallel.shm.SharedFleet`) and receive only small
        per-round repair messages; the round's racks are split into
        contiguous shard chunks.  ``"sharded"`` is the same pool with
        pod-aligned shards — each worker owns whole pods, so REQUEST/ACK
        traffic between shards is (on a fat-tree) empty, and any
        cross-shard request is counted by
        ``sheriff_cross_shard_requests_total``.  All planners are
        byte-identical to ``workers=0``.
    shards:
        Worker-process count for the ``"process"``/``"sharded"``
        planners.  ``0`` (default) = one shard per pod for ``"sharded"``
        and ``resolve_workers(workers)`` chunks for ``"process"``.
    auto_inline_threshold:
        Break-even for the ``workers=-1`` auto mode, in estimated task
        cost units (alerted racks × alerted VMs).  Rounds cheaper than
        this plan inline; at or above it they fan out.  Replaces the old
        fixed task-count constant (see docs/performance.md).
    cache_cost_kernels:
        Memoize the shortest-path table per (topology, knobs) and per-VM
        Eq. (1) cost vectors per placement generation (invalidated for
        moved VMs and their dependency neighbors).  Results are identical
        with the cache on or off.
    fallback_policy:
        Worst-case degradation of predictive alerting (see
        docs/robust-forecasting.md).  ``"none"`` (default) leaves managed
        runs byte-identical to the historical engine.  ``"reactive"``
        arms the :class:`~repro.sim.fallback.FallbackManager` around any
        observing (predictive) alert source driven through
        :func:`~repro.sim.driver.run_managed_simulation`: when the
        trailing mean absolute forecast error over ``fallback_window``
        rounds crosses ``fallback_error_bound``, alerting degrades to the
        paper's reactive contingency manager — the provable floor — and
        recovers after ``fallback_recovery_rounds`` consecutive calm
        rounds.  Each transition emits a
        :class:`~repro.obs.events.FallbackTransition` trace event and
        counts in ``sheriff_fallback_transitions_total``.
    fallback_error_bound:
        Trailing mean absolute forecast error (normalized load units)
        above which the fallback triggers.
    fallback_window:
        Rounds in the trailing-error window.
    fallback_recovery_rounds:
        Consecutive rounds the trailing error must stay at or under the
        bound before predictive alerting resumes.
    tracer:
        Structured event sink; defaults to the disabled
        :data:`~repro.obs.tracer.NULL_TRACER` (zero cost).
    metrics:
        Shared :class:`~repro.obs.metrics.MetricsRegistry`; ``None`` lets
        the simulation create a private one.
    profile:
        Record wall-clock section timings (``RoundSummary.timings``).
    profiler:
        Pre-built :class:`~repro.obs.profiling.Profiler` to use instead
        of a simulation-private one — pass
        ``Profiler(record_spans=True)`` to capture nested spans for the
        Chrome/Perfetto exporter.  Implies ``profile``-style timing when
        set; ``None`` (default) keeps the historical behaviour.
    metrics_stream:
        Open text stream receiving one JSON line per round —
        ``{"round": N, "metrics": {...}}``, the round's
        :class:`~repro.obs.metrics.MetricsScope` window — next to the
        event trace (the CLI's ``--metrics-out PATH``).  ``None``
        disables the snapshot stream.
    fault_schedule:
        Deterministic fault-injection schedule (see
        :mod:`repro.faults`); ``None`` disables the fault layer entirely
        and keeps every simulation byte-identical to a fault-free build.
    channel_policy:
        Lossy REQUEST/ACK channel model (loss probability, timeout,
        bounded retry); ``None`` keeps the reliable in-process channel.
    slo:
        Enable the application-facing SLO layer (see docs/slo.md): a
        per-VM SLO model is derived from the workload profile and the
        dependency graph, and an accountant charges
        SLO-violation-minutes from host overload, migration downtime and
        dependency-path stretch into the ``sheriff_slo_*`` metric family
        plus :class:`~repro.obs.events.SloViolation` trace events.
        ``False`` (default) keeps every simulation byte-identical to an
        SLO-free build — the layer is never even imported.
    scoring:
        Migration scoring mode.  ``"network"`` (default) is the paper's
        pure Eq. (1) cost (plus load steering).  ``"slo"`` adds predicted
        SLO damage — stop-and-copy downtime × the VM's request rate,
        amplified by destination load — on top, so the matching trades
        network bytes against application pain.  ``stats.total_cost``
        still reports the true Eq. (1) cost either way.
    slo_overload_threshold:
        Host utilisation above which resident VMs accrue overload
        violation-minutes (only read when ``slo`` is on).
    slo_round_minutes:
        Wall-clock minutes one management round represents in the SLO
        ledger.
    slo_budget_minutes:
        Per-tenant-class SLO error budget in violation-minutes; the first
        crossing emits :class:`~repro.obs.events.SloBudgetExhausted`.
        ``0`` (default) disables budget tracking.
    slo_damage_weight:
        Strength of the predicted-SLO-damage addend under
        ``scoring="slo"``.
    event_bus:
        Pre-built :class:`~repro.service.bus.EventBus` the simulation's
        round scheduler publishes on — pass one to subscribe to the
        service events (``RoundOpened``, ``AlertRaised``,
        ``RackPlanned``, ``RoundClosed``, …) from outside the engine,
        e.g. the serve-mode driver or a determinism audit with
        ``EventBus(record=True)``.  ``None`` (default) gives the
        simulation a private bus (reachable as ``sim.bus``).
    """

    cost_params: Optional["CostParams"] = None
    alpha: float = 0.1
    beta: float = 0.1
    balance_weight: float = 50.0
    migration_cooldown: int = 3
    migration_timing: Optional["MigrationTiming"] = None
    with_flows: bool = False
    flow_rate: float = 0.05
    workers: int = 0
    planner: str = "thread"
    shards: int = 0
    auto_inline_threshold: int = 16384
    cache_cost_kernels: bool = True
    fallback_policy: str = "none"
    fallback_error_bound: float = 0.15
    fallback_window: int = 8
    fallback_recovery_rounds: int = 4
    slo: bool = False
    scoring: str = "network"
    slo_overload_threshold: float = 0.9
    slo_round_minutes: float = 1.0
    slo_budget_minutes: float = 0.0
    slo_damage_weight: float = 1.0
    tracer: Tracer = field(default=NULL_TRACER)
    metrics: Optional["MetricsRegistry"] = None
    profile: bool = True
    profiler: Optional["Profiler"] = None
    metrics_stream: Optional[TextIO] = None
    fault_schedule: Optional["FaultSchedule"] = None
    channel_policy: Optional["ChannelPolicy"] = None
    event_bus: Optional["EventBus"] = None

    def replace(self, **changes: Any) -> "SheriffConfig":
        """A copy of this config with *changes* applied."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """This config as a JSON-serializable dict (``from_dict`` inverse).

        Only the *declarative* knobs serialize: scalars plus the nested
        ``cost_params`` / ``migration_timing`` dataclasses.  Runtime
        handles (tracer, metrics registry, profiler, streams, fault
        schedule, channel policy, event bus) describe live objects, not
        configuration — a config carrying a non-default one raises
        :class:`~repro.errors.ConfigurationError` rather than silently
        dropping it from the round trip.
        """
        from dataclasses import asdict

        from repro.errors import ConfigurationError

        live = [
            name
            for name, default in _RUNTIME_HANDLE_DEFAULTS.items()
            if getattr(self, name) is not default
        ]
        if live:
            raise ConfigurationError(
                "cannot serialize runtime handle(s) to JSON: "
                + ", ".join(live)
            )
        data: Dict[str, Any] = {
            name: getattr(self, name) for name in _SCALAR_FIELDS
        }
        if self.cost_params is not None:
            data["cost_params"] = asdict(self.cost_params)
        if self.migration_timing is not None:
            data["migration_timing"] = asdict(self.migration_timing)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SheriffConfig":
        """Build a config from :meth:`to_dict` output (e.g. a JSON file).

        Unknown keys raise :class:`~repro.errors.ConfigurationError` so a
        typo'd ``--config`` file fails loudly instead of silently running
        the defaults.
        """
        from repro.errors import ConfigurationError

        if not isinstance(data, dict):
            raise ConfigurationError(
                f"config must be a JSON object, got {type(data).__name__}"
            )
        allowed = _SCALAR_FIELDS | {"cost_params", "migration_timing"}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ConfigurationError(
                f"unknown config key(s): {', '.join(unknown)} "
                f"(allowed: {', '.join(sorted(allowed))})"
            )
        kwargs: Dict[str, Any] = {
            k: v for k, v in data.items() if k in _SCALAR_FIELDS
        }
        if data.get("cost_params") is not None:
            from repro.costs.model import CostParams

            try:
                kwargs["cost_params"] = CostParams(**data["cost_params"])
            except TypeError as exc:
                raise ConfigurationError(f"bad cost_params: {exc}") from None
        if data.get("migration_timing") is not None:
            from repro.sim.inflight import MigrationTiming

            try:
                kwargs["migration_timing"] = MigrationTiming(
                    **data["migration_timing"]
                )
            except TypeError as exc:
                raise ConfigurationError(
                    f"bad migration_timing: {exc}"
                ) from None
        return cls(**kwargs)


_SCALAR_FIELDS = frozenset(
    {
        "alpha",
        "beta",
        "balance_weight",
        "migration_cooldown",
        "with_flows",
        "flow_rate",
        "workers",
        "planner",
        "shards",
        "auto_inline_threshold",
        "cache_cost_kernels",
        "fallback_policy",
        "fallback_error_bound",
        "fallback_window",
        "fallback_recovery_rounds",
        "slo",
        "scoring",
        "slo_overload_threshold",
        "slo_round_minutes",
        "slo_budget_minutes",
        "slo_damage_weight",
        "profile",
    }
)
"""Fields that serialize directly in :meth:`SheriffConfig.to_dict`."""

_RUNTIME_HANDLE_DEFAULTS = {
    "tracer": NULL_TRACER,
    "metrics": None,
    "profiler": None,
    "metrics_stream": None,
    "fault_schedule": None,
    "channel_policy": None,
    "event_bus": None,
}
"""Live-object fields excluded from JSON round-trips (default sentinels)."""

LEGACY_SIM_KWARGS = frozenset(
    {
        "cost_params",
        "alpha",
        "beta",
        "balance_weight",
        "migration_cooldown",
        "migration_timing",
        "with_flows",
        "flow_rate",
    }
)
"""Former ``SheriffSimulation`` keyword arguments, now deprecated aliases."""

_CONFIG_FIELDS = frozenset(f.name for f in fields(SheriffConfig))


def resolve_config(
    config: Optional[SheriffConfig],
    legacy: Dict[str, Any],
    *,
    owner: str = "SheriffSimulation",
    stacklevel: int = 3,
) -> SheriffConfig:
    """Merge a config object with legacy keyword arguments.

    ``tracer``/``metrics``/``profile`` pass through silently (they are
    first-class keywords of the new API); every key in
    :data:`LEGACY_SIM_KWARGS` works but warns; anything else raises
    ``TypeError`` like a normal unexpected keyword.
    """
    unknown = sorted(set(legacy) - _CONFIG_FIELDS)
    if unknown:
        raise TypeError(
            f"{owner}() got unexpected keyword argument(s): {', '.join(unknown)}"
        )
    deprecated = sorted(set(legacy) & LEGACY_SIM_KWARGS)
    if deprecated:
        replacements = ", ".join(
            f"{key} -> SheriffConfig.{key}" for key in deprecated
        )
        warnings.warn(
            f"passing {', '.join(deprecated)} to {owner}() directly is "
            f"deprecated and will be removed in release 2.0; set the "
            f"replacement SheriffConfig field instead ({replacements})",
            DeprecationWarning,
            stacklevel=stacklevel,
        )
    cfg = config if config is not None else SheriffConfig()
    if legacy:
        cfg = cfg.replace(**legacy)
    return cfg
